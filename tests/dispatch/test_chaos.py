"""Crash/chaos tests: the dispatcher must survive worker death.

The chaos hooks live in the worker itself
(:mod:`repro.dispatch.worker`): an environment variable names a token
file, and the *first* worker to win the token (atomic unlink) dies
abruptly mid-job — or stalls past any deadline.  Exactly one worker
per token triggers, so the retry necessarily lands on a healthy
worker: precisely the retry-with-exclusion path under test.

The spool corruption test mirrors ``test_cache.py``'s pattern: a
truncated ``.result.json`` must be quarantined (deleted) and the job
re-dispatched, never parsed into a half-envelope.
"""

from __future__ import annotations

import json
import subprocess
import threading

import pytest

from repro.api import CoverSpec, solve
from repro.dispatch import (
    CHAOS_EXIT_ENV,
    CHAOS_EXIT_NODES_ENV,
    CHAOS_STALL_ENV,
    DispatchError,
    JobError,
    SpoolTransport,
    SubprocessTransport,
    WorkerPreempted,
    dispatch_batch,
)
from repro.dispatch.subproc import _SubprocessWorker, worker_command, worker_env

SPECS = [CoverSpec.for_ring(n, backend="exact", use_hints=False) for n in (4, 5, 6, 7)]

# The mid-proof chaos tests need a search long enough to checkpoint
# *inside*: n=8 certification runs a few thousand nodes.
N8 = CoverSpec.for_ring(8, backend="exact", use_hints=False)


@pytest.fixture(scope="module")
def oracle():
    return [solve(spec, cache=None).to_json() for spec in SPECS]


@pytest.fixture(scope="module")
def n8_oracle():
    return solve(N8, cache=None)


class TestSubprocessChaos:
    def test_worker_killed_mid_job_retries_with_exclusion(self, tmp_path, oracle):
        token = tmp_path / "crash-token"
        token.touch()
        transport = SubprocessTransport(extra_env={CHAOS_EXIT_ENV: str(token)})
        report = dispatch_batch(SPECS, transport=transport, workers=2)
        assert not token.exists()  # the chaos actually fired
        assert report.worker_deaths == 1
        assert report.retries == 1
        # the sweep still converged, byte-identically
        assert [r.to_json() for r in report.results] == oracle

    def test_stalled_worker_is_killed_by_the_job_deadline(self, tmp_path, oracle):
        token = tmp_path / "stall-token"
        token.touch()
        transport = SubprocessTransport(extra_env={CHAOS_STALL_ENV: str(token)})
        report = dispatch_batch(
            SPECS, transport=transport, workers=2, job_timeout=10.0
        )
        assert not token.exists()
        assert report.worker_deaths == 1
        assert [r.to_json() for r in report.results] == oracle

    def test_deterministic_job_failure_fails_fast_not_forever(self):
        # n=13 exceeds every exact ceiling: the worker reports a routing
        # error, and retrying elsewhere cannot help — the dispatch must
        # raise immediately instead of burning workers.
        bad = CoverSpec.for_ring(13, backend="exact")
        with pytest.raises((JobError, DispatchError), match="exact"):
            dispatch_batch([bad], transport="subprocess", workers=1)


class TestSpoolChaos:
    def test_truncated_result_is_quarantined_and_redispatched(self, tmp_path, oracle):
        root = tmp_path / "spool"
        (root / "results").mkdir(parents=True)
        victim = root / "results" / f"{SPECS[2].spec_hash}.result.json"
        victim.write_text(oracle[2][: len(oracle[2]) // 3])  # torn write
        report = dispatch_batch(SPECS, transport=SpoolTransport(root), workers=2)
        assert report.quarantined == 1
        assert report.resumed == 0
        assert [r.to_json() for r in report.results] == oracle
        # the quarantined entry was replaced by a full, valid envelope
        assert json.loads(victim.read_text())["spec_hash"] == SPECS[2].spec_hash

    def test_crash_on_start_workers_trip_the_respawn_cap(self, tmp_path):
        # Workers that die before claiming anything (broken interpreter
        # environment) must fail the dispatch loudly, not respawn forever.
        transport = SpoolTransport(
            tmp_path / "spool", extra_env={"PYTHONHOME": "/nonexistent"}
        )
        with pytest.raises(DispatchError, match="without claiming"):
            dispatch_batch(SPECS[:2], transport=transport, workers=2)

    def test_spool_worker_crash_is_reclaimed_and_completed(self, tmp_path, oracle):
        token = tmp_path / "crash-token"
        token.touch()
        transport = SpoolTransport(
            tmp_path / "spool", extra_env={CHAOS_EXIT_ENV: str(token)}
        )
        report = dispatch_batch(
            SPECS, transport=transport, workers=2, job_timeout=30.0
        )
        assert not token.exists()
        assert report.worker_deaths >= 1
        assert [r.to_json() for r in report.results] == oracle

    def test_spool_worker_killed_mid_proof_resumes_from_checkpoint(
        self, tmp_path, n8_oracle
    ):
        """The real work-migration story: a worker SIGKILLed *inside* a
        proof leaves a checkpoint in ``checkpoints/``; whoever reclaims
        the job resumes from it (the backend loads any checkpoint under
        the spec hash unconditionally), so nodes-after-resume is the
        remainder of the proof, not a restart — and the final envelope
        is still byte-identical to a serial solve."""
        root = tmp_path / "spool"
        token = tmp_path / "nodes-token"
        token.touch()
        ckpt_file = root / "checkpoints" / f"{N8.spec_hash}.ckpt.json"

        report_box: dict = {}

        def _dispatch():
            report_box["report"] = dispatch_batch(
                [N8],
                transport=SpoolTransport(root, spawn_workers=False),
                workers=1,
                job_timeout=8.0,
            )

        dispatcher = threading.Thread(target=_dispatch, daemon=True)
        dispatcher.start()

        # Phase 1: a chaos worker that dies abruptly (os._exit, claim
        # left dangling) once the search passes 2500 nodes — after the
        # 512-node periodic flushes below that mark.
        chaos = subprocess.Popen(
            worker_command()
            + ["--spool", str(root), "--poll", "0.01", "--checkpoint-every", "512"],
            env=worker_env({CHAOS_EXIT_NODES_ENV: f"{token}:2500"}),
        )
        assert chaos.wait(timeout=60) == 23  # the chaos exit code
        assert not token.exists()

        # The dead worker's last flush is on disk and strictly mid-proof:
        # resuming from it costs (total - nodes) < total nodes.
        ckpt = json.loads(ckpt_file.read_text())
        assert 0 < ckpt["nodes"] < n8_oracle.stats.nodes

        # Phase 2: a healthy worker picks up the reclaimed job.
        healthy = subprocess.Popen(
            worker_command() + ["--spool", str(root), "--poll", "0.01"],
            env=worker_env(),
        )
        try:
            dispatcher.join(timeout=120)
            assert not dispatcher.is_alive()
        finally:
            healthy.terminate()
            healthy.wait(timeout=10)
        report = report_box["report"]
        assert report.worker_deaths >= 1
        assert [r.to_json() for r in report.results] == [n8_oracle.to_json()]
        assert not ckpt_file.exists()  # completed proofs clean up


class TestPreemption:
    def test_stdio_preempt_hands_checkpoint_to_replacement_worker(self, n8_oracle):
        """Protocol-level migration, fully deterministic: worker 1 gets
        the job plus an immediate preempt request, answers with a
        checkpoint, and exits; worker 2 resumes from that wire
        checkpoint and finishes byte-identically."""
        w1 = _SubprocessWorker("pre1")
        timer = threading.Timer(0.05, w1._request_preempt)
        timer.daemon = True
        timer.start()
        try:
            with pytest.raises(WorkerPreempted) as err:
                w1.solve(N8, None)
        finally:
            timer.cancel()
            w1.close()
        checkpoint = err.value.checkpoint
        assert checkpoint is not None
        assert 0 < checkpoint["nodes"] < n8_oracle.stats.nodes

        w2 = _SubprocessWorker("pre2")
        try:
            result = w2.solve(N8, None, checkpoint=checkpoint)
        finally:
            w2.close()
        assert result.to_json() == n8_oracle.to_json()

    def test_spool_preempt_after_migrates_in_budgeted_slices(
        self, tmp_path, n8_oracle
    ):
        """A --preempt-after node budget makes spool workers bow out,
        checkpoint, and hand the job back; the proof still converges
        (each claim advances one full budget) with an identical
        envelope."""
        transport = SpoolTransport(
            tmp_path / "spool",
            extra_args=["--preempt-after", "800n", "--checkpoint-every", "512"],
        )
        report = dispatch_batch([N8], transport=transport, workers=1)
        assert [r.to_json() for r in report.results] == [n8_oracle.to_json()]
