"""Crash/chaos tests: the dispatcher must survive worker death.

Faults are injected with the structured harness in
:mod:`repro.dispatch.faults`: an armed :class:`FaultPlan` rides an
environment variable into every worker, and the *first* worker to win
a fault's token (atomic unlink) dies abruptly mid-job — or stalls,
drops its heartbeat, corrupts its result.  Exactly one worker per
token triggers, so the retry necessarily lands on a healthy worker:
precisely the retry-with-exclusion path under test.

``TestLeases`` is the heartbeat-lease story: a slow worker whose lease
keeps renewing is *never* reclaimed (the double-solve regression), a
stalled worker's frozen lease is reclaimed promptly, and a dropped
heartbeat causes a benign reclaim whose straggler write changes
nothing.

The spool corruption test mirrors ``test_cache.py``'s pattern: a
truncated ``.result.json`` must be quarantined (deleted) and the job
re-dispatched, never parsed into a half-envelope.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import threading
import time

import pytest

from repro.api import CoverSpec, solve
from repro.dispatch import (
    FAULT_EXIT_CODE,
    DispatchError,
    Fault,
    FaultPlan,
    JobError,
    SpoolTransport,
    SubprocessTransport,
    WorkerPreempted,
    dispatch_batch,
)
from repro.core.kernel import KERNEL_ENV, numpy_available
from repro.dispatch.subproc import _SubprocessWorker, worker_command, worker_env

SPECS = [CoverSpec.for_ring(n, backend="exact", use_hints=False) for n in (4, 5, 6, 7)]

# The mid-proof chaos tests need a search long enough to checkpoint
# *inside*: n=8 certification runs a few thousand nodes.
N8 = CoverSpec.for_ring(8, backend="exact", use_hints=False)


@pytest.fixture(scope="module")
def oracle():
    return [solve(spec, cache=None).to_json() for spec in SPECS]


@pytest.fixture(scope="module")
def n8_oracle():
    return solve(N8, cache=None)


def _armed(tmp_path, *faults, seed=2001):
    """Arm a FaultPlan in tmp_path and return (plan, its worker env)."""
    plan = FaultPlan(faults=tuple(faults), seed=seed).arm(tmp_path)
    return plan, plan.env()


class TestSubprocessChaos:
    def test_worker_killed_mid_job_retries_with_exclusion(self, tmp_path, oracle):
        plan, env = _armed(tmp_path, Fault(kind="crash"))
        transport = SubprocessTransport(extra_env=env)
        report = dispatch_batch(SPECS, transport=transport, workers=2)
        assert not any(
            f.token and os.path.exists(f.token) for f in plan.faults
        )  # the fault actually fired
        assert report.worker_deaths == 1
        assert report.retries == 1
        # the sweep still converged, byte-identically
        assert [r.to_json() for r in report.results] == oracle

    def test_stalled_worker_is_killed_by_the_job_deadline(self, tmp_path, oracle):
        plan, env = _armed(tmp_path, Fault(kind="stall"))
        transport = SubprocessTransport(extra_env=env)
        report = dispatch_batch(
            SPECS, transport=transport, workers=2, job_timeout=10.0
        )
        assert report.worker_deaths == 1
        assert [r.to_json() for r in report.results] == oracle

    def test_deterministic_job_failure_fails_fast_not_forever(self):
        # n=13 exceeds every exact ceiling: the worker reports a routing
        # error, and retrying elsewhere cannot help — the dispatch must
        # raise immediately instead of burning workers.
        bad = CoverSpec.for_ring(13, backend="exact")
        with pytest.raises((JobError, DispatchError), match="exact"):
            dispatch_batch([bad], transport="subprocess", workers=1)


class TestSpoolChaos:
    def test_truncated_result_is_quarantined_and_redispatched(self, tmp_path, oracle):
        root = tmp_path / "spool"
        (root / "results").mkdir(parents=True)
        victim = root / "results" / f"{SPECS[2].spec_hash}.result.json"
        victim.write_text(oracle[2][: len(oracle[2]) // 3])  # torn write
        report = dispatch_batch(SPECS, transport=SpoolTransport(root), workers=2)
        assert report.quarantined == 1
        assert report.resumed == 0
        assert [r.to_json() for r in report.results] == oracle
        # the quarantined entry was replaced by a full, valid envelope
        assert json.loads(victim.read_text())["spec_hash"] == SPECS[2].spec_hash

    def test_crash_on_start_workers_trip_the_respawn_cap(self, tmp_path):
        # Workers that die before claiming anything (broken interpreter
        # environment) must fail the dispatch loudly, not respawn forever.
        transport = SpoolTransport(
            tmp_path / "spool", extra_env={"PYTHONHOME": "/nonexistent"}
        )
        with pytest.raises(DispatchError, match="without claiming"):
            dispatch_batch(SPECS[:2], transport=transport, workers=2)

    def test_spool_worker_crash_is_reclaimed_and_completed(self, tmp_path, oracle):
        plan, env = _armed(tmp_path, Fault(kind="crash"))
        transport = SpoolTransport(tmp_path / "spool", extra_env=env)
        report = dispatch_batch(
            SPECS, transport=transport, workers=2, job_timeout=30.0
        )
        assert not any(
            f.token and os.path.exists(f.token) for f in plan.faults
        )  # the fault actually fired
        assert report.worker_deaths >= 1
        assert [r.to_json() for r in report.results] == oracle

    def test_spool_worker_killed_mid_proof_resumes_from_checkpoint(
        self, tmp_path, n8_oracle
    ):
        """The real work-migration story: a worker SIGKILLed *inside* a
        proof leaves a checkpoint in ``checkpoints/``; whoever reclaims
        the job resumes from it (the backend loads any checkpoint under
        the spec hash unconditionally), so nodes-after-resume is the
        remainder of the proof, not a restart — and the final envelope
        is still byte-identical to a serial solve."""
        root = tmp_path / "spool"
        plan, fault_env = _armed(tmp_path, Fault(kind="crash_at_node", at_node=2500))
        ckpt_file = root / "checkpoints" / f"{N8.spec_hash}.ckpt.json"

        report_box: dict = {}

        def _dispatch():
            report_box["report"] = dispatch_batch(
                [N8],
                transport=SpoolTransport(root, spawn_workers=False),
                workers=1,
                job_timeout=8.0,
            )

        dispatcher = threading.Thread(target=_dispatch, daemon=True)
        dispatcher.start()

        # Phase 1: a chaos worker that dies abruptly (os._exit, claim
        # left dangling) once the search passes 2500 nodes — after the
        # 512-node periodic flushes below that mark.
        chaos = subprocess.Popen(
            worker_command()
            + ["--spool", str(root), "--poll", "0.01", "--checkpoint-every", "512"],
            env=worker_env(fault_env),
        )
        assert chaos.wait(timeout=60) == FAULT_EXIT_CODE
        assert not any(
            f.token and os.path.exists(f.token) for f in plan.faults
        )  # the fault actually fired

        # The dead worker's last flush is on disk and strictly mid-proof:
        # resuming from it costs (total - nodes) < total nodes.
        ckpt = json.loads(ckpt_file.read_text())
        assert 0 < ckpt["nodes"] < n8_oracle.stats.nodes

        # Phase 2: a healthy worker picks up the reclaimed job.
        healthy = subprocess.Popen(
            worker_command() + ["--spool", str(root), "--poll", "0.01"],
            env=worker_env(),
        )
        try:
            dispatcher.join(timeout=120)
            assert not dispatcher.is_alive()
        finally:
            healthy.terminate()
            healthy.wait(timeout=10)
        report = report_box["report"]
        assert report.worker_deaths >= 1
        assert [r.to_json() for r in report.results] == [n8_oracle.to_json()]
        assert not ckpt_file.exists()  # completed proofs clean up

    @pytest.mark.skipif(not numpy_available(), reason="numpy kernel not available")
    @pytest.mark.parametrize(
        "dying,reclaiming", [("numpy", "python"), ("python", "numpy")]
    )
    def test_checkpoint_migrates_across_kernels(
        self, tmp_path, n8_oracle, dying, reclaiming
    ):
        """Same mid-proof kill, but the dying worker and the reclaiming
        worker run *different* search kernels (``REPRO_KERNEL`` rides
        the worker env).  Checkpoints are kernel-agnostic, so the
        resumed proof still produces the byte-identical envelope."""
        root = tmp_path / "spool"
        plan, fault_env = _armed(tmp_path, Fault(kind="crash_at_node", at_node=2500))
        ckpt_file = root / "checkpoints" / f"{N8.spec_hash}.ckpt.json"

        report_box: dict = {}

        def _dispatch():
            report_box["report"] = dispatch_batch(
                [N8],
                transport=SpoolTransport(root, spawn_workers=False),
                workers=1,
                job_timeout=8.0,
            )

        dispatcher = threading.Thread(target=_dispatch, daemon=True)
        dispatcher.start()

        chaos = subprocess.Popen(
            worker_command()
            + ["--spool", str(root), "--poll", "0.01", "--checkpoint-every", "512"],
            env=worker_env({**fault_env, KERNEL_ENV: dying}),
        )
        assert chaos.wait(timeout=60) == FAULT_EXIT_CODE
        assert not any(f.token and os.path.exists(f.token) for f in plan.faults)
        assert 0 < json.loads(ckpt_file.read_text())["nodes"] < n8_oracle.stats.nodes

        healthy = subprocess.Popen(
            worker_command() + ["--spool", str(root), "--poll", "0.01"],
            env=worker_env({KERNEL_ENV: reclaiming}),
        )
        try:
            dispatcher.join(timeout=120)
            assert not dispatcher.is_alive()
        finally:
            healthy.terminate()
            healthy.wait(timeout=10)
        report = report_box["report"]
        assert report.worker_deaths >= 1
        assert [r.to_json() for r in report.results] == [n8_oracle.to_json()]
        assert not ckpt_file.exists()


class TestLeases:
    """Heartbeat-lease reclaim: slow-but-alive is sacred, frozen is dead."""

    def test_slow_heartbeating_worker_is_never_reclaimed(self, tmp_path, oracle):
        """THE double-solve regression: a worker that is merely slow —
        lease renewing the whole time — must keep its claim no matter
        how far past ``job_timeout`` it runs.  Before leases, the
        deadline reclaimed it mid-solve and a second worker solved the
        same job again."""
        plan, env = _armed(tmp_path, Fault(kind="slow", seconds=3.0))
        transport = SpoolTransport(
            tmp_path / "spool", extra_env=env, lease_timeout=1.0
        )
        report = dispatch_batch(
            SPECS, transport=transport, workers=2, job_timeout=1.0
        )
        assert report.worker_deaths == 0
        assert report.retries == 0
        assert [r.to_json() for r in report.results] == oracle

    def test_sigstopped_worker_keeps_its_claim_within_the_lease_window(
        self, tmp_path, n8_oracle
    ):
        """A worker SIGSTOPped past the old job deadline but within the
        lease window resumes and finishes its own claim — no reclaim,
        no double solve."""
        root = tmp_path / "spool"
        report_box: dict = {}

        def _dispatch():
            report_box["report"] = dispatch_batch(
                [N8],
                transport=SpoolTransport(
                    root, spawn_workers=False, lease_timeout=30.0
                ),
                workers=1,
                job_timeout=0.5,
            )

        dispatcher = threading.Thread(target=_dispatch, daemon=True)
        dispatcher.start()
        worker = subprocess.Popen(
            worker_command() + ["--spool", str(root), "--poll", "0.01"],
            env=worker_env(),
        )
        claims = root / "claims"
        try:
            deadline = time.monotonic() + 30
            claimed = False
            while time.monotonic() < deadline:
                if claims.is_dir() and any(claims.iterdir()):
                    claimed = True
                    break
                time.sleep(0.005)
            assert claimed, "worker never claimed the job"
            os.kill(worker.pid, signal.SIGSTOP)
            time.sleep(1.5)  # blows the 0.5 s deadline, not the lease
            os.kill(worker.pid, signal.SIGCONT)
            dispatcher.join(timeout=120)
            assert not dispatcher.is_alive()
        finally:
            worker.terminate()
            worker.wait(timeout=10)
        report = report_box["report"]
        assert report.worker_deaths == 0
        assert report.retries == 0
        assert [r.to_json() for r in report.results] == [n8_oracle.to_json()]

    def test_stalled_worker_lease_goes_stale_and_job_is_reclaimed(
        self, tmp_path, oracle
    ):
        """No job deadline at all: a stalled worker is reclaimed purely
        because its lease beat froze for lease_timeout."""
        plan, env = _armed(tmp_path, Fault(kind="stall", seconds=6.0))
        transport = SpoolTransport(
            tmp_path / "spool", extra_env=env, lease_timeout=1.0
        )
        report = dispatch_batch(SPECS, transport=transport, workers=2)
        assert report.worker_deaths >= 1
        assert [r.to_json() for r in report.results] == oracle

    def test_dropped_heartbeat_reclaim_is_benign(self, tmp_path, n8_oracle):
        """A worker that keeps working but whose heartbeats stop landing
        on disk looks dead from outside and is reclaimed; its straggler
        result write is atomic and byte-identical, so whichever envelope
        lands first is accepted unchanged.  (The ``slow`` fault keeps
        the worker alive long enough for the frozen lease to go stale —
        its renewal attempts fire but ``drop_heartbeat`` eats them.)"""
        plan, env = _armed(
            tmp_path, Fault(kind="drop_heartbeat"), Fault(kind="slow", seconds=3.0)
        )
        transport = SpoolTransport(
            tmp_path / "spool", extra_env=env, lease_timeout=1.0
        )
        report = dispatch_batch([N8], transport=transport, workers=2)
        assert report.worker_deaths >= 1
        assert [r.to_json() for r in report.results] == [n8_oracle.to_json()]

    def test_corrupt_result_fault_is_quarantined_and_resolved(
        self, tmp_path, oracle
    ):
        """The worker-side torn-write fault: the winning worker truncates
        the one result it writes; the dispatcher quarantines the garbage
        and re-dispatches, converging byte-identically."""
        plan, env = _armed(tmp_path, Fault(kind="corrupt_result"))
        transport = SpoolTransport(tmp_path / "spool", extra_env=env)
        report = dispatch_batch(SPECS, transport=transport, workers=2)
        assert report.quarantined == 1
        assert report.retries == 1
        assert [r.to_json() for r in report.results] == oracle


class TestPreemption:
    def test_stdio_preempt_hands_checkpoint_to_replacement_worker(self, n8_oracle):
        """Protocol-level migration, fully deterministic: worker 1 gets
        the job plus an immediate preempt request, answers with a
        checkpoint, and exits; worker 2 resumes from that wire
        checkpoint and finishes byte-identically."""
        w1 = _SubprocessWorker("pre1")
        timer = threading.Timer(0.05, w1._request_preempt)
        timer.daemon = True
        timer.start()
        try:
            with pytest.raises(WorkerPreempted) as err:
                w1.solve(N8, None)
        finally:
            timer.cancel()
            w1.close()
        checkpoint = err.value.checkpoint
        assert checkpoint is not None
        assert 0 < checkpoint["nodes"] < n8_oracle.stats.nodes

        w2 = _SubprocessWorker("pre2")
        try:
            result = w2.solve(N8, None, checkpoint=checkpoint)
        finally:
            w2.close()
        assert result.to_json() == n8_oracle.to_json()

    def test_spool_preempt_after_migrates_in_budgeted_slices(
        self, tmp_path, n8_oracle
    ):
        """A --preempt-after node budget makes spool workers bow out,
        checkpoint, and hand the job back; the proof still converges
        (each claim advances one full budget) with an identical
        envelope."""
        transport = SpoolTransport(
            tmp_path / "spool",
            extra_args=["--preempt-after", "800n", "--checkpoint-every", "512"],
        )
        report = dispatch_batch([N8], transport=transport, workers=1)
        assert [r.to_json() for r in report.results] == [n8_oracle.to_json()]
