"""Crash/chaos tests: the dispatcher must survive worker death.

The chaos hooks live in the worker itself
(:mod:`repro.dispatch.worker`): an environment variable names a token
file, and the *first* worker to win the token (atomic unlink) dies
abruptly mid-job — or stalls past any deadline.  Exactly one worker
per token triggers, so the retry necessarily lands on a healthy
worker: precisely the retry-with-exclusion path under test.

The spool corruption test mirrors ``test_cache.py``'s pattern: a
truncated ``.result.json`` must be quarantined (deleted) and the job
re-dispatched, never parsed into a half-envelope.
"""

from __future__ import annotations

import json

import pytest

from repro.api import CoverSpec, solve
from repro.dispatch import (
    CHAOS_EXIT_ENV,
    CHAOS_STALL_ENV,
    DispatchError,
    JobError,
    SpoolTransport,
    SubprocessTransport,
    dispatch_batch,
)

SPECS = [CoverSpec.for_ring(n, backend="exact", use_hints=False) for n in (4, 5, 6, 7)]


@pytest.fixture(scope="module")
def oracle():
    return [solve(spec, cache=None).to_json() for spec in SPECS]


class TestSubprocessChaos:
    def test_worker_killed_mid_job_retries_with_exclusion(self, tmp_path, oracle):
        token = tmp_path / "crash-token"
        token.touch()
        transport = SubprocessTransport(extra_env={CHAOS_EXIT_ENV: str(token)})
        report = dispatch_batch(SPECS, transport=transport, workers=2)
        assert not token.exists()  # the chaos actually fired
        assert report.worker_deaths == 1
        assert report.retries == 1
        # the sweep still converged, byte-identically
        assert [r.to_json() for r in report.results] == oracle

    def test_stalled_worker_is_killed_by_the_job_deadline(self, tmp_path, oracle):
        token = tmp_path / "stall-token"
        token.touch()
        transport = SubprocessTransport(extra_env={CHAOS_STALL_ENV: str(token)})
        report = dispatch_batch(
            SPECS, transport=transport, workers=2, job_timeout=10.0
        )
        assert not token.exists()
        assert report.worker_deaths == 1
        assert [r.to_json() for r in report.results] == oracle

    def test_deterministic_job_failure_fails_fast_not_forever(self):
        # n=13 exceeds every exact ceiling: the worker reports a routing
        # error, and retrying elsewhere cannot help — the dispatch must
        # raise immediately instead of burning workers.
        bad = CoverSpec.for_ring(13, backend="exact")
        with pytest.raises((JobError, DispatchError), match="exact"):
            dispatch_batch([bad], transport="subprocess", workers=1)


class TestSpoolChaos:
    def test_truncated_result_is_quarantined_and_redispatched(self, tmp_path, oracle):
        root = tmp_path / "spool"
        (root / "results").mkdir(parents=True)
        victim = root / "results" / f"{SPECS[2].spec_hash}.result.json"
        victim.write_text(oracle[2][: len(oracle[2]) // 3])  # torn write
        report = dispatch_batch(SPECS, transport=SpoolTransport(root), workers=2)
        assert report.quarantined == 1
        assert report.resumed == 0
        assert [r.to_json() for r in report.results] == oracle
        # the quarantined entry was replaced by a full, valid envelope
        assert json.loads(victim.read_text())["spec_hash"] == SPECS[2].spec_hash

    def test_crash_on_start_workers_trip_the_respawn_cap(self, tmp_path):
        # Workers that die before claiming anything (broken interpreter
        # environment) must fail the dispatch loudly, not respawn forever.
        transport = SpoolTransport(
            tmp_path / "spool", extra_env={"PYTHONHOME": "/nonexistent"}
        )
        with pytest.raises(DispatchError, match="without claiming"):
            dispatch_batch(SPECS[:2], transport=transport, workers=2)

    def test_spool_worker_crash_is_reclaimed_and_completed(self, tmp_path, oracle):
        token = tmp_path / "crash-token"
        token.touch()
        transport = SpoolTransport(
            tmp_path / "spool", extra_env={CHAOS_EXIT_ENV: str(token)}
        )
        report = dispatch_batch(
            SPECS, transport=transport, workers=2, job_timeout=30.0
        )
        assert not token.exists()
        assert report.worker_deaths >= 1
        assert [r.to_json() for r in report.results] == oracle
