"""Dispatcher policy: scheduling order, dedup, cache resume, merge.

Transport execution is covered in ``test_transports.py`` and the
failure paths in ``test_chaos.py``; everything here runs on the cheap
in-process transport.
"""

from __future__ import annotations

import pytest

from repro.api import CoverSpec, ResultCache, solve, solve_batch
from repro.core.engine import SolverStats
from repro.dispatch import (
    DispatchError,
    InProcessTransport,
    SpoolTransport,
    SubprocessTransport,
    cost_weight,
    dispatch_batch,
    make_transport,
)
from repro.util.parallel import lpt_order

SPECS = [CoverSpec.for_ring(n, backend="exact", use_hints=False) for n in (4, 5, 6, 7)]


class TestSchedulingPolicy:
    def test_cost_weight_grows_with_n_and_lam(self):
        assert cost_weight(CoverSpec.for_ring(9)) > cost_weight(CoverSpec.for_ring(8))
        assert cost_weight(CoverSpec.for_ring(7, lam=3)) > cost_weight(
            CoverSpec.for_ring(7, lam=2)
        )

    def test_lpt_order_is_heaviest_first(self):
        weights = [cost_weight(s) for s in SPECS]
        assert lpt_order(weights) == [3, 2, 1, 0]

    def test_results_come_back_in_spec_order_despite_lpt(self):
        report = dispatch_batch(SPECS, transport="inproc", workers=1, order="lpt")
        assert [r.spec.n for r in report.results] == [4, 5, 6, 7]

    def test_unknown_order_rejected(self):
        with pytest.raises(DispatchError, match="order"):
            dispatch_batch(SPECS, transport="inproc", order="random")

    def test_unknown_transport_rejected(self):
        with pytest.raises(DispatchError, match="unknown transport"):
            dispatch_batch(SPECS, transport="carrier-pigeon")

    def test_make_transport_passes_instances_through(self):
        tr = InProcessTransport()
        assert make_transport(tr) is tr
        assert isinstance(make_transport("subprocess"), SubprocessTransport)
        assert isinstance(make_transport("spool"), SpoolTransport)


class TestDedupAndMerge:
    def test_duplicate_specs_solve_once_and_share_bytes(self):
        doubled = [SPECS[0], SPECS[1], SPECS[0]]
        report = dispatch_batch(doubled, transport="inproc", workers=1)
        assert len(report.results) == 3
        assert report.results[0].to_json() == report.results[2].to_json()
        # one unique job each for n=4 and n=5 → exactly two timings
        assert len(report.seconds) == 2

    def test_merged_stats_are_deterministic_shard_totals(self):
        r1 = dispatch_batch(SPECS, transport="inproc", workers=1)
        r2 = dispatch_batch(SPECS, transport="inproc", workers=1)
        assert r1.merged_stats == r2.merged_stats
        expected = SolverStats.merge(
            [
                res.stats
                for res in sorted(r1.results, key=lambda r: r.spec_hash)
            ]
        )
        assert r1.merged_stats.nodes == expected.nodes
        assert r1.merged_stats.proven_optimal


class TestCacheIntegration:
    def test_write_through_then_full_resume(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        first = dispatch_batch(SPECS, transport="inproc", workers=1, cache=cache)
        assert first.cached == 0 and len(cache) == len(SPECS)
        again = dispatch_batch(SPECS, transport="inproc", workers=1, cache=cache)
        assert again.cached == len(SPECS)
        assert all(r.from_cache for r in again.results)
        assert [r.to_json() for r in again.results] == [
            r.to_json() for r in first.results
        ]

    def test_partial_resume_dispatches_only_the_missing_jobs(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        solve(SPECS[0], cache=cache)
        solve(SPECS[2], cache=cache)
        report = dispatch_batch(SPECS, transport="inproc", workers=1, cache=cache)
        assert report.cached == 2
        assert [r.from_cache for r in report.results] == [True, False, True, False]


class TestBudget:
    def test_exhausted_budget_skips_everything(self):
        report = dispatch_batch(
            SPECS, transport="inproc", workers=1, order="fifo", time_budget=0.0
        )
        assert report.results == []
        assert [s.n for s in report.skipped] == [4, 5, 6, 7]

    def test_cache_hits_survive_a_dead_budget(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        solve(SPECS[1], cache=cache)
        report = dispatch_batch(
            SPECS,
            transport="inproc",
            workers=1,
            order="fifo",
            time_budget=0.0,
            cache=cache,
        )
        assert [r.spec.n for r in report.results] == [5]
        assert [s.n for s in report.skipped] == [4, 6, 7]


class TestSolveBatchFrontDoor:
    def test_default_is_the_serial_inline_path(self, tmp_path):
        serial = solve_batch(SPECS, cache=tmp_path / "c")
        assert [r.spec.n for r in serial] == [4, 5, 6, 7]

    def test_transport_path_is_byte_identical_to_serial(self):
        serial = [solve(s, cache=None).to_json() for s in SPECS]
        dispatched = solve_batch(SPECS, transport="inproc", workers=1)
        assert [r.to_json() for r in dispatched] == serial
