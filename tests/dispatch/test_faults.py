"""Fault-plan, retry-policy, circuit-breaker, and degradation tests.

Everything here runs without subprocesses: :class:`FaultPlan` and
:class:`FaultInjector` are exercised directly, the
:class:`~repro.dispatch.base.RetryPolicy` invariants are pinned with
hypothesis, and the :class:`~repro.dispatch.base.QueueRunner` retry /
exclusion / quarantine machinery is driven with scripted in-memory
workers.  The subprocess- and spool-level ends of the same machinery
live in ``test_chaos.py``.
"""

from __future__ import annotations

import itertools
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import CoverSpec, solve
from repro.api.result import DEGRADE_PROVENANCE_KEY
from repro.api.spec import SpecError
from repro.dispatch import (
    DispatchError,
    Fault,
    FaultInjector,
    FaultPlan,
    Job,
    RetryPolicy,
    dispatch_batch,
)
from repro.dispatch.base import QueueRunner, QueueWorker, WorkerDeath
from repro.dispatch.faults import FAULT_PLAN_ENV

# ---------------------------------------------------------------------------
# FaultPlan / FaultInjector
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_round_trips_through_json(self):
        plan = FaultPlan(
            faults=(
                Fault(kind="crash", token="/tmp/t1"),
                Fault(kind="crash_at_node", token="/tmp/t2", at_node=2500),
                Fault(kind="stall", seconds=45.0),
                Fault(kind="slow", seconds=2.0),
                Fault(kind="corrupt_result"),
                Fault(kind="drop_heartbeat"),
                Fault(kind="refuse_preempt"),
            ),
            seed=2001,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_unknown_kind_and_bad_schema_are_rejected(self):
        with pytest.raises(SpecError, match="unknown fault kind"):
            Fault(kind="gremlin")
        with pytest.raises(SpecError, match="crash_at_node"):
            Fault(kind="crash_at_node")  # no at_node
        with pytest.raises(SpecError):
            FaultPlan.from_json('{"format": "not-a-fault-plan"}')
        with pytest.raises(SpecError, match="JSON"):
            FaultPlan.from_json("{")

    def test_arm_creates_seed_derived_tokens(self, tmp_path):
        plan = FaultPlan(
            faults=(Fault(kind="crash"), Fault(kind="stall")), seed=7
        ).arm(tmp_path)
        tokens = [f.token for f in plan.faults]
        assert all(t is not None for t in tokens)
        assert len(set(tokens)) == 2
        for token in tokens:
            assert (tmp_path / token.split("/")[-1]).exists()
            assert "00000007" in token  # the seed names the token

    def test_token_is_won_exactly_once_across_injectors(self, tmp_path):
        plan = FaultPlan(faults=(Fault(kind="corrupt_result"),), seed=1).arm(tmp_path)
        first = FaultInjector(plan)
        second = FaultInjector(plan)
        first.begin_job()
        second.begin_job()
        # Only the injector that unlinked the token corrupts anything.
        assert first.corrupt("x" * 30) != "x" * 30
        assert second.corrupt("x" * 30) == "x" * 30

    def test_corrupt_fault_is_consumed_after_one_result(self, tmp_path):
        plan = FaultPlan(faults=(Fault(kind="corrupt_result"),), seed=1).arm(tmp_path)
        injector = FaultInjector(plan)
        injector.begin_job()
        assert injector.corrupt("y" * 30) == "y" * 10
        assert injector.corrupt("y" * 30) == "y" * 30  # consumed

    def test_from_env_reads_inline_json_and_at_file(self, tmp_path):
        plan = FaultPlan(faults=(Fault(kind="drop_heartbeat", token="t"),), seed=3)
        inline = FaultInjector.from_env({FAULT_PLAN_ENV: plan.to_json()})
        assert inline is not None and inline.plan == plan
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        from_file = FaultInjector.from_env({FAULT_PLAN_ENV: f"@{path}"})
        assert from_file is not None and from_file.plan == plan
        assert FaultInjector.from_env({}) is None

    def test_legacy_chaos_envs_are_gone_and_ignored(self, tmp_path):
        # The REPRO_CHAOS_* one-release shim (PR 7) was removed on
        # schedule: an environment still carrying the old spellings
        # arms nothing, silently.
        token = tmp_path / "tok"
        token.touch()
        legacy = {
            "REPRO_DISPATCH_CHAOS": str(token),
            "REPRO_DISPATCH_STALL": str(token),
            "REPRO_DISPATCH_CHAOS_NODES": f"{token}:2500",
        }
        assert FaultInjector.from_env(legacy) is None
        import repro.dispatch as dispatch_pkg

        for name in ("CHAOS_EXIT_ENV", "CHAOS_STALL_ENV", "CHAOS_EXIT_NODES_ENV"):
            assert not hasattr(dispatch_pkg, name)

    def test_refuse_preempt_masks_the_real_callback(self, tmp_path):
        plan = FaultPlan(faults=(Fault(kind="refuse_preempt"),), seed=1).arm(tmp_path)
        injector = FaultInjector(plan)
        injector.begin_job()

        class _St:
            nodes = 10**9

        wrapped = injector.wrap_preempt(lambda st: True)
        assert wrapped(_St()) is False


# ---------------------------------------------------------------------------
# RetryPolicy invariants (hypothesis)
# ---------------------------------------------------------------------------

policies = st.builds(
    RetryPolicy,
    max_retries=st.integers(min_value=0, max_value=16),
    base_delay=st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
    factor=st.floats(min_value=1.0, max_value=8.0, allow_nan=False),
    max_delay=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    quarantine_after=st.integers(min_value=1, max_value=8),
)


class TestRetryPolicy:
    @given(policy=policies)
    @settings(deadline=None)
    def test_schedule_is_deterministic_monotone_and_capped(self, policy):
        first = policy.schedule()
        assert first == policy.schedule()  # seed-free: same every call
        assert len(first) == policy.max_retries
        assert all(d >= 0 for d in first)
        assert all(a <= b for a, b in zip(first, first[1:]))  # monotone
        assert all(d <= policy.max_delay for d in first)  # capped

    @given(policy=policies, attempt=st.integers(min_value=-3, max_value=32))
    @settings(deadline=None)
    def test_delay_zero_before_first_retry(self, policy, attempt):
        d = policy.delay(attempt)
        if attempt <= 0:
            assert d == 0.0
        else:
            assert 0.0 <= d <= policy.max_delay or d == policy.base_delay

    def test_invalid_parameters_are_rejected(self):
        with pytest.raises(DispatchError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(DispatchError):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(DispatchError):
            RetryPolicy(factor=0.5)
        with pytest.raises(DispatchError):
            RetryPolicy(quarantine_after=0)


# ---------------------------------------------------------------------------
# QueueRunner: exclusion, backoff, circuit breaker (scripted workers)
# ---------------------------------------------------------------------------

SPEC4 = CoverSpec.for_ring(4)


class _ScriptedWorker(QueueWorker):
    """An in-memory QueueWorker whose behaviour is a function of its id."""

    def __init__(self, wid: str, behavior):
        self.id = wid
        self._behavior = behavior

    def solve(self, spec, timeout, checkpoint=None):
        return self._behavior(self.id, spec)

    def close(self) -> None:
        pass


def _runner(jobs, behavior, *, workers, policy):
    counter = itertools.count(1)
    log: list[tuple[str, str]] = []

    def on_result(job, result, elapsed, worker_id):
        log.append((job.spec_hash, worker_id))

    runner = QueueRunner(
        lambda: _ScriptedWorker(f"w{next(counter)}", behavior),
        jobs,
        workers=workers,
        job_timeout=None,
        on_result=on_result,
        policy=policy,
    )
    return runner, log


def _job(index=0):
    return Job(spec=SPEC4, weight=1.0, index=index)


class TestQueueRunnerPolicy:
    def test_retry_lands_on_a_worker_outside_the_exclusion_list(self):
        def behavior(wid, spec):
            if wid == "w1":
                raise WorkerDeath("scripted death")
            return "envelope"

        runner, log = _runner(
            [_job()],
            behavior,
            workers=1,
            policy=RetryPolicy(max_retries=2, base_delay=0.0, quarantine_after=99),
        )
        outcome = runner.run()
        assert outcome.retries == 1
        assert outcome.worker_deaths == 1
        # The retry ran on the replacement, never back on the dead worker.
        assert log == [(SPEC4.spec_hash, "w2")]

    def test_exclusion_list_grows_monotonically_across_deaths(self):
        seen: list[tuple[str, ...]] = []

        def behavior(wid, spec):
            if wid in ("w1", "w2"):
                raise WorkerDeath("scripted death")
            return "envelope"

        job = _job()
        orig_claim = QueueRunner._claim

        def spying_claim(self, worker_id):
            claimed = orig_claim(self, worker_id)
            if claimed is not None:
                seen.append(claimed.excluded)
            return claimed

        runner, log = _runner(
            [job],
            behavior,
            workers=1,
            policy=RetryPolicy(max_retries=3, base_delay=0.0, quarantine_after=99),
        )
        runner._claim = spying_claim.__get__(runner)
        runner.run()
        # Each claim sees a superset of the previous exclusion list.
        assert seen == [(), ("w1",), ("w1", "w2")]
        assert log == [(SPEC4.spec_hash, "w3")]

    def test_backoff_gate_defers_the_retry(self):
        from time import perf_counter

        stamps: list[float] = []

        def behavior(wid, spec):
            stamps.append(perf_counter())
            if wid == "w1":
                raise WorkerDeath("scripted death")
            return "envelope"

        runner, _ = _runner(
            [_job()],
            behavior,
            workers=1,
            policy=RetryPolicy(
                max_retries=1, base_delay=0.2, factor=1.0, quarantine_after=99
            ),
        )
        runner.run()
        assert len(stamps) == 2
        assert stamps[1] - stamps[0] >= 0.2  # sat out delay(1)

    def test_crashy_slot_is_quarantined_while_the_batch_completes(self):
        import time

        def behavior(wid, spec):
            # Whichever slot draws w2 respawns into w3 (the global
            # counter only advances for the dying slot), so that slot
            # accumulates two consecutive crashes and trips the breaker;
            # the healthy slot (w1) is kept busy by the sleep so the
            # crashy slot genuinely claims jobs.
            if wid in ("w2", "w3"):
                raise WorkerDeath("scripted death")
            time.sleep(0.02)
            return "envelope"

        jobs = [_job(i) for i in range(6)]
        runner, log = _runner(
            jobs,
            behavior,
            workers=2,
            policy=RetryPolicy(max_retries=5, base_delay=0.0, quarantine_after=2),
        )
        outcome = runner.run()
        assert len(log) == 6  # every job finished despite the breaker
        assert outcome.worker_deaths == 2
        assert outcome.quarantined_workers == 1

    def test_quarantine_never_retires_the_last_live_slot(self):
        calls = itertools.count()

        def behavior(wid, spec):
            # First two workers die; the third succeeds — with ONE slot
            # the circuit breaker must keep respawning, not deadlock.
            if next(calls) < 2:
                raise WorkerDeath("scripted death")
            return "envelope"

        runner, log = _runner(
            [_job()],
            behavior,
            workers=1,
            policy=RetryPolicy(max_retries=5, base_delay=0.0, quarantine_after=1),
        )
        outcome = runner.run()
        assert len(log) == 1
        assert outcome.quarantined_workers == 0

    def test_exhausted_job_without_hook_fails_the_batch(self):
        def behavior(wid, spec):
            raise WorkerDeath("scripted death")

        runner, _ = _runner(
            [_job()],
            behavior,
            workers=1,
            policy=RetryPolicy(max_retries=1, base_delay=0.0, quarantine_after=99),
        )
        with pytest.raises(DispatchError, match="died on 2 distinct workers"):
            runner.run()

    def test_exhausted_job_is_absorbed_by_the_degradation_hook(self):
        absorbed: list[Job] = []

        def behavior(wid, spec):
            raise WorkerDeath("scripted death")

        counter = itertools.count(1)
        runner = QueueRunner(
            lambda: _ScriptedWorker(f"w{next(counter)}", behavior),
            [_job()],
            workers=1,
            job_timeout=None,
            on_result=lambda *a: None,
            policy=RetryPolicy(max_retries=1, base_delay=0.0, quarantine_after=99),
            on_exhausted=lambda job, exc: absorbed.append(job) or True,
        )
        outcome = runner.run()
        assert len(absorbed) == 1
        assert outcome.degraded == absorbed


# ---------------------------------------------------------------------------
# Graceful degradation end-to-end (inproc: no subprocess cost)
# ---------------------------------------------------------------------------

# n=13 exceeds every exact-backend ceiling: routing fails
# deterministically, which is exactly what degrade= must paper over.
BAD = CoverSpec.for_ring(13, backend="exact")


class TestGracefulDegradation:
    def test_without_degrade_the_batch_fails_fast(self):
        from repro.util.errors import ReproError

        # inproc surfaces the raw RoutingError; subprocess wraps it in a
        # JobError — either way the batch fails fast without degrade=.
        with pytest.raises(ReproError, match="exact"):
            dispatch_batch([BAD], transport="inproc", workers=1, cache=None)

    def test_degrade_heuristic_returns_verified_feasible_envelope(self):
        report = dispatch_batch(
            [BAD], transport="inproc", workers=1, cache=None, degrade="heuristic"
        )
        assert report.degraded == 1
        (result,) = report.results
        assert result.covering.covers(BAD.instance())
        info = result.provenance[DEGRADE_PROVENANCE_KEY]
        assert info["policy"] == "heuristic"
        assert info["original_backend"] == "exact"
        assert info["original_spec_hash"] == BAD.spec_hash
        # Runtime-only: the serialized envelope never carries the marker,
        # so cached/emitted bytes stay identical to a certified run's.
        assert DEGRADE_PROVENANCE_KEY not in json.loads(result.to_json()).get(
            "provenance", {}
        )
        assert "degraded=1" in report.summary()

    def test_degrade_works_on_the_pooled_inproc_path(self):
        good = CoverSpec.for_ring(5)
        report = dispatch_batch(
            [good, BAD],
            transport="inproc",
            workers=2,
            cache=None,
            degrade="heuristic",
        )
        assert report.degraded == 1
        assert len(report.results) == 2
        oracle = solve(good, cache=None)
        assert report.results[0].to_json() == oracle.to_json()

    def test_degraded_envelopes_are_never_cached(self, tmp_path):
        from repro.api import ResultCache

        cache = ResultCache(tmp_path / "cache")
        report = dispatch_batch(
            [BAD], transport="inproc", workers=1, cache=cache, degrade="heuristic"
        )
        assert report.degraded == 1
        assert cache.get(BAD) is None  # the certified cache stays clean

    def test_unknown_degrade_policy_is_rejected(self):
        with pytest.raises(DispatchError, match="unknown degrade policy"):
            dispatch_batch([BAD], transport="inproc", degrade="prayer")

    def test_solve_batch_front_door_passes_degrade_through(self):
        from repro.api import solve_batch

        results = solve_batch(
            [BAD], transport="inproc", workers=1, degrade="heuristic"
        )
        assert results[0].covering.covers(BAD.instance())
        with pytest.raises(ValueError, match="transport"):
            solve_batch([BAD], degrade="heuristic")  # in-line path: no dispatcher
