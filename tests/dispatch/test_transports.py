"""Transport equivalence: every transport must return envelopes
byte-identical to in-process solves of the same specs — the contract
the differential suite (``tests/test_differential.py``) establishes for
the in-process oracle itself.

Also covers the worker protocol directly (stdio line shapes) and the
spool directory layout / shutdown discipline.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.api import CoverSpec, solve
from repro.dispatch import SpoolTransport, dispatch_batch, stdio_worker_loop

# A spread of job shapes: K_n certification, a closed-form route, λ-fold
# demand, an explicitly restricted instance, and the objective axis
# (min_total_size + Manthey-restricted covers — the minor-1 envelope
# spelling must cross every worker wire unchanged).
SPECS = (
    [CoverSpec.for_ring(n, backend="exact", use_hints=False) for n in (4, 5, 6, 7)]
    + [
        CoverSpec.for_ring(9),  # router picks closed_form
        CoverSpec.for_ring(5, lam=2),
        CoverSpec(n=6, demand=((0, 2, 1), (1, 4, 2))),
        CoverSpec.for_ring(7, objective="min_total_size"),  # closed_form ADM
        CoverSpec.for_ring(4, objective="min_total_size", backend="exact"),
        CoverSpec.for_ring(6, allowed_sizes=(3,)),  # restricted cover
    ]
)


@pytest.fixture(scope="module")
def oracle():
    """In-process envelope bytes, one per spec, in spec order."""
    return [solve(spec, cache=None).to_json() for spec in SPECS]


class TestByteIdentity:
    def test_inproc_serial(self, oracle):
        report = dispatch_batch(SPECS, transport="inproc", workers=1)
        assert [r.to_json() for r in report.results] == oracle

    def test_inproc_pooled(self, oracle):
        report = dispatch_batch(SPECS, transport="inproc", workers=2)
        assert [r.to_json() for r in report.results] == oracle

    def test_subprocess_pool(self, oracle):
        report = dispatch_batch(SPECS, transport="subprocess", workers=2)
        assert [r.to_json() for r in report.results] == oracle
        assert report.transport == "subprocess"
        assert report.retries == 0 and report.worker_deaths == 0

    def test_spool(self, oracle, tmp_path):
        report = dispatch_batch(
            SPECS, transport=SpoolTransport(tmp_path / "spool"), workers=2
        )
        assert [r.to_json() for r in report.results] == oracle


class TestStdioProtocol:
    def _roundtrip(self, lines: list[str]) -> list[dict]:
        out = io.StringIO()
        stdio_worker_loop(io.StringIO("\n".join(lines) + "\n"), out)
        return [json.loads(line) for line in out.getvalue().splitlines()]

    def test_one_job_one_envelope_line(self):
        spec = SPECS[0]
        request = json.dumps({"spec": spec.to_payload()})
        replies = self._roundtrip([request])
        assert len(replies) == 1
        reply = replies[0]
        assert reply["ok"] and reply["spec_hash"] == spec.spec_hash
        expected = solve(spec, cache=None).to_payload()
        assert reply["result"] == expected

    def test_malformed_line_reports_not_crashes(self):
        replies = self._roundtrip(["{ not json", json.dumps({"spec": SPECS[0].to_payload()})])
        assert [r["ok"] for r in replies] == [False, True]
        assert "malformed" in replies[0]["error"]

    def test_bad_spec_reports_spec_error(self):
        replies = self._roundtrip([json.dumps({"spec": {"n": 2}})])
        assert replies[0]["ok"] is False
        assert replies[0]["kind"] == "SpecError"

    def test_blank_lines_are_ignored(self):
        replies = self._roundtrip(["", json.dumps({"spec": SPECS[1].to_payload()}), ""])
        assert len(replies) == 1 and replies[0]["ok"]


class TestSpoolLayout:
    def test_drained_spool_leaves_results_and_stop(self, tmp_path):
        root = tmp_path / "spool"
        specs = SPECS[:3]
        dispatch_batch(specs, transport=SpoolTransport(root), workers=2)
        assert sorted(p.name for p in (root / "results").iterdir()) == sorted(
            f"{s.spec_hash}.result.json" for s in specs
        )
        assert list((root / "jobs").iterdir()) == []
        assert list((root / "claims").iterdir()) == []
        assert (root / "STOP").exists()  # polling workers shut down

    def test_result_files_are_full_envelopes(self, tmp_path):
        root = tmp_path / "spool"
        spec = SPECS[0]
        dispatch_batch([spec], transport=SpoolTransport(root), workers=1)
        from repro.api import Result

        text = (root / "results" / f"{spec.spec_hash}.result.json").read_text()
        assert Result.from_json(text, verify=True).spec == spec

    def test_resume_accepts_prior_results_without_solving(self, tmp_path, oracle):
        root = tmp_path / "spool"
        (root / "results").mkdir(parents=True)
        (root / "results" / f"{SPECS[1].spec_hash}.result.json").write_text(oracle[1])
        report = dispatch_batch(
            SPECS, transport=SpoolTransport(root), workers=2
        )
        assert report.resumed == 1
        assert [r.to_json() for r in report.results] == oracle

    def test_anonymous_spool_cleans_up_after_itself(self):
        transport = SpoolTransport()  # private temp dir
        assert transport.root is None  # lazy: nothing on disk until run
        dispatch_batch(SPECS[:2], transport=transport, workers=1)
        assert transport.root is None  # removed and reset after the run

    def test_fully_cached_dispatch_never_touches_disk(self, tmp_path):
        cache = tmp_path / "cache"
        dispatch_batch(SPECS[:2], transport="inproc", workers=1, cache=cache)
        transport = SpoolTransport()
        report = dispatch_batch(SPECS[:2], transport=transport, workers=1, cache=cache)
        assert report.cached == 2
        assert transport.root is None  # no spool dir was ever created

    def test_jobs_spool_in_lpt_order_and_an_inline_worker_drains_them(
        self, tmp_path, oracle
    ):
        """The schedule survives the filesystem: job filenames carry the
        dispatch sequence, so a worker draining ``jobs/`` in sorted
        order executes heaviest-first."""
        import threading
        import time

        from repro.dispatch import spool_worker_loop
        from repro.dispatch.dispatcher import cost_weight
        from repro.util.parallel import lpt_order

        root = tmp_path / "spool"
        transport = SpoolTransport(root, spawn_workers=False)
        box = {}

        def drive():
            box["report"] = dispatch_batch(SPECS, transport=transport, workers=1)

        thread = threading.Thread(target=drive)
        thread.start()
        deadline = time.time() + 15
        names: list[str] = []
        while time.time() < deadline and len(names) < len(SPECS):
            if (root / "jobs").is_dir():
                names = sorted(p.name for p in (root / "jobs").glob("*.json"))
            time.sleep(0.01)
        expected = [
            SPECS[i].spec_hash for i in lpt_order([cost_weight(s) for s in SPECS])
        ]
        assert [n.split("-", 1)[1].removesuffix(".json") for n in names] == expected
        spool_worker_loop(root, exit_when_idle=True)  # play the remote worker
        thread.join(timeout=60)
        assert not thread.is_alive()
        assert [r.to_json() for r in box["report"].results] == oracle
