"""Tests for the tree-of-rings DRC characterisation — including the
property test against the exponential path-assignment router, which is
the empirical proof of the extended lemma."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocks import CycleBlock
from repro.core.drc import is_drc_routable
from repro.extensions.topologies import drc_route_on_graph, ring_network_graph, tree_of_rings
from repro.extensions.tree_of_rings_drc import (
    drc_on_tree_of_rings,
    gate_projection,
    is_tree_of_rings,
    rings_of,
)
from repro.rings.topology import PhysicalNetwork
from repro.util.errors import TopologyError


class TestRecognition:
    def test_tree_of_rings_recognised(self):
        assert is_tree_of_rings(tree_of_rings((4, 5)))
        assert is_tree_of_rings(ring_network_graph(6))

    def test_bridge_rejected(self):
        g = nx.cycle_graph(4)
        g.add_edge(0, 10)  # pendant bridge
        assert not is_tree_of_rings(PhysicalNetwork(g))

    def test_grid_rejected(self):
        g = nx.convert_node_labels_to_integers(nx.grid_2d_graph(3, 3))
        assert not is_tree_of_rings(PhysicalNetwork(g))

    def test_rings_enumerated(self):
        net = tree_of_rings((4, 4, 4))
        rings = rings_of(net)
        assert len(rings) == 3
        assert all(len(r) == 4 for r in rings)

    def test_predicate_requires_tree_of_rings(self):
        g = nx.convert_node_labels_to_integers(nx.grid_2d_graph(3, 3))
        with pytest.raises(TopologyError):
            drc_on_tree_of_rings(PhysicalNetwork(g), CycleBlock((0, 1, 2)))


class TestGateProjection:
    def test_far_vertices_project_to_cut_node(self):
        net = tree_of_rings((4, 4))  # ring 1: 0..3, ring 2 shares node 2
        rings = rings_of(net)
        ring1 = next(tuple(r) for r in rings if 0 in r)
        # A block entirely in ring 2 projects to the cut node of ring 1.
        far = [v for v in net.graph.nodes() if v not in ring1]
        blk = CycleBlock(tuple(far[:3]))
        assert len(gate_projection(net, ring1, blk)) <= 1

    def test_local_block_projects_to_itself(self):
        net = tree_of_rings((5, 4))
        rings = rings_of(net)
        ring1 = next(tuple(r) for r in rings if 0 in r)
        blk = CycleBlock(tuple(sorted(ring1)[:3]))
        assert set(gate_projection(net, ring1, blk)) == set(blk.vertices)


class TestCharacterisation:
    def test_matches_ring_lemma_on_single_ring(self):
        net = ring_network_graph(7)
        cases = [(0, 2, 4), (0, 1, 3, 5), (0, 2, 1, 4), (1, 3, 2, 6)]
        for vs in cases:
            blk = CycleBlock(vs)
            assert drc_on_tree_of_rings(net, blk) == is_drc_routable(7, blk)

    def test_cross_ring_cycle(self):
        net = tree_of_rings((4, 4))
        # Nodes 0..3 form ring 1; ring 2 = {2, 4, 5, 6} sharing node 2.
        blk = CycleBlock((0, 1, 4, 5))
        assert drc_on_tree_of_rings(net, blk) == (
            drc_route_on_graph(net, blk) is not None
        )

    @given(st.sampled_from([(4, 4), (5, 5), (4, 4, 4), (3, 5)]), st.data())
    @settings(max_examples=120, deadline=None)
    def test_lemma_matches_bruteforce(self, sizes, data):
        """The extended DRC lemma, empirically: per-ring circular-order
        gate projections ⟺ an edge-disjoint path system exists."""
        net = tree_of_rings(sizes)
        nodes = sorted(net.graph.nodes())
        k = data.draw(st.integers(3, 4))
        vs = tuple(
            data.draw(
                st.lists(st.sampled_from(nodes), min_size=k, max_size=k, unique=True)
            )
        )
        blk = CycleBlock(vs)
        fast = drc_on_tree_of_rings(net, blk)
        brute = drc_route_on_graph(net, blk) is not None
        assert fast == brute

    def test_vertex_outside_network(self):
        net = tree_of_rings((4, 4))
        with pytest.raises(TopologyError):
            drc_on_tree_of_rings(net, CycleBlock((0, 1, 99)))
