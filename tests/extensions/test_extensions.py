"""Tests for the paper's future-work extensions: λK_n and topologies."""

from __future__ import annotations

import pytest

from repro.core.blocks import CycleBlock
from repro.core.formulas import rho
from repro.extensions.lambda_fold import (
    lambda_covering,
    lambda_gap,
    lambda_lower_bound,
    repetition_covering,
)
from repro.extensions.topologies import (
    drc_route_on_graph,
    greedy_graph_covering,
    grid_network,
    is_drc_routable_on_graph,
    ring_network_graph,
    torus_network,
    tree_of_rings,
)
from repro.traffic.instances import lambda_all_to_all
from repro.util.errors import ConstructionError, TopologyError


class TestLambdaFold:
    @pytest.mark.parametrize("n,lam", [(5, 2), (7, 3), (6, 2), (8, 3), (9, 2)])
    def test_covering_valid(self, n, lam):
        cov = lambda_covering(n, lam)
        assert cov.covers(lambda_all_to_all(n, lam))
        assert cov.is_drc_feasible()

    def test_odd_repetition_is_certified_optimal(self):
        """For odd n the counting bound is a multiple of n, so λ copies
        of the Theorem 1 decomposition are provably optimal."""
        for n in (5, 7, 9):
            for lam in (2, 3, 4):
                assert lambda_gap(n, lam) == 0

    def test_even_gap_bounded(self):
        for n in (6, 8, 10):
            for lam in (2, 3):
                gap = lambda_gap(n, lam)
                assert 0 <= gap <= lam

    def test_lower_bound_components(self):
        cert = lambda_lower_bound(8, 3)  # λ odd, p even: parity applies
        assert {a.name for a in cert.arguments} == {"counting", "diameter", "parity"}
        cert = lambda_lower_bound(8, 2)  # λ even: parity vanishes
        assert "parity" not in {a.name for a in cert.arguments}

    def test_lambda_one_matches_base(self):
        assert lambda_lower_bound(7, 1).value == rho(7)
        assert lambda_covering(7, 1).num_blocks == rho(7)

    def test_repetition_counts(self):
        assert repetition_covering(9, 3).num_blocks == 3 * rho(9)

    def test_validation(self):
        with pytest.raises(ValueError):
            lambda_covering(7, 0)
        with pytest.raises(ValueError):
            lambda_lower_bound(2, 1)


class TestTopologyGenerators:
    def test_ring(self):
        net = ring_network_graph(6)
        assert net.is_ring()
        with pytest.raises(TopologyError):
            ring_network_graph(2)

    def test_tree_of_rings_shares_nodes(self):
        net = tree_of_rings((5, 5))
        assert net.num_nodes == 9  # 5 + 5 − 1 shared
        assert net.num_links == 10
        assert net.is_two_edge_connected()
        assert not net.is_ring()

    def test_tree_of_rings_three(self):
        net = tree_of_rings((4, 4, 4))
        assert net.num_nodes == 10
        assert net.is_two_edge_connected()

    def test_grid_and_torus(self):
        grid = grid_network(3, 4)
        assert grid.num_nodes == 12
        assert grid.num_links == 17
        torus = torus_network(3, 3)
        assert torus.num_nodes == 9
        assert torus.num_links == 18
        assert torus.is_two_edge_connected()

    def test_generator_validation(self):
        with pytest.raises(TopologyError):
            tree_of_rings(())
        with pytest.raises(TopologyError):
            tree_of_rings((2,))
        with pytest.raises(TopologyError):
            grid_network(1, 5)
        with pytest.raises(TopologyError):
            torus_network(2, 3)


class TestGeneralDrc:
    def test_matches_ring_characterisation(self):
        """On a ring, the general-graph router agrees with the exact
        circular-order characterisation — anchoring the generalisation."""
        from repro.core.drc import is_drc_routable

        net = ring_network_graph(6)
        cases = [(0, 2, 4), (0, 1, 3, 4), (0, 2, 1, 4), (0, 3, 1, 4)]
        for vs in cases:
            blk = CycleBlock(vs)
            assert is_drc_routable_on_graph(net, blk) == is_drc_routable(6, blk)

    def test_tree_unique_paths(self):
        import networkx as nx

        from repro.rings.topology import PhysicalNetwork

        star = PhysicalNetwork(nx.star_graph(4), name="star")
        # All paths cross the hub: a triangle of leaf requests reuses
        # hub edges and cannot be routed edge-disjointly.
        assert not is_drc_routable_on_graph(star, CycleBlock((1, 2, 3)))
        # A cycle through the hub itself also reuses hub edges.
        assert not is_drc_routable_on_graph(star, CycleBlock((0, 1, 2)))

    def test_torus_has_more_room(self):
        net = torus_network(3, 3)
        blk = CycleBlock((0, 4, 8))
        routing = drc_route_on_graph(net, blk)
        assert routing is not None
        used = set()
        for path in routing.values():
            for u, v in zip(path, path[1:]):
                key = (min(u, v), max(u, v))
                assert key not in used
                used.add(key)

    def test_endpoint_validation(self):
        net = ring_network_graph(5)
        with pytest.raises(TopologyError):
            drc_route_on_graph(net, CycleBlock((0, 1, 9)))


class TestGreedyGraphCovering:
    @pytest.mark.parametrize(
        "factory", [lambda: ring_network_graph(7), lambda: tree_of_rings((4, 4)),
                    lambda: grid_network(3, 3), lambda: torus_network(3, 3)]
    )
    def test_covers_all_pairs_routably(self, factory):
        net = factory()
        blocks = greedy_graph_covering(net)
        n = net.num_nodes
        covered = {e for blk in blocks for e in blk.edges()}
        assert covered == {(a, b) for a in range(n) for b in range(a + 1, n)}
        assert all(is_drc_routable_on_graph(net, blk) for blk in blocks)

    def test_rejects_non_survivable(self):
        import networkx as nx

        from repro.rings.topology import PhysicalNetwork

        with pytest.raises(ConstructionError):
            greedy_graph_covering(PhysicalNetwork(nx.path_graph(4)))
