"""Tests for covering statistics and the ASCII visualiser."""

from __future__ import annotations

import pytest

from repro.analysis.statistics import covering_statistics
from repro.analysis.viz import render_coverage_heatline, render_ring_block, render_routing
from repro.core.blocks import CycleBlock
from repro.core.construction import optimal_covering
from repro.core.covering import Covering
from repro.core.drc import route_block
from repro.util import circular


class TestStatistics:
    def test_odd_decomposition_stats(self):
        n = 11
        stats = covering_statistics(optimal_covering(n))
        assert stats.all_tight
        assert stats.load_balanced
        assert stats.vertex_load_min == n // 2
        assert stats.excess_by_distance == {}
        assert stats.mean_block_distance_sum == pytest.approx(n)

    def test_even_covering_stats(self):
        n = 10
        stats = covering_statistics(optimal_covering(n))
        assert sum(stats.excess_by_distance.values()) == 5
        # Coverage per class ≥ class size.
        for d, needed in stats.distance_class_required.items():
            assert stats.distance_class_coverage.get(d, 0) >= needed

    def test_distance_class_required_totals(self):
        for n in (9, 10):
            stats = covering_statistics(optimal_covering(n))
            assert sum(stats.distance_class_required.values()) == circular.n_chords(n)

    def test_empty_covering(self):
        stats = covering_statistics(Covering(5, ()))
        assert stats.num_blocks == 0
        assert stats.vertex_load_max == 0
        assert stats.mean_block_distance_sum == 0.0

    def test_summary_text(self):
        text = covering_statistics(optimal_covering(7)).summary()
        assert "tight 6/6" in text


class TestViz:
    def test_ring_block_marks_members(self):
        art = render_ring_block(8, CycleBlock((0, 3, 5)))
        assert "[0]" in art and "[3]" in art and "[5]" in art
        assert "[1]" not in art and "1" in art  # non-member unbracketed
        assert art.startswith("C_8 with block (0, 3, 5)")

    def test_ring_block_rejects_tiny(self):
        with pytest.raises(ValueError):
            render_ring_block(2, CycleBlock((0, 1, 2)))

    def test_routing_rows_disjoint(self):
        routing = route_block(9, CycleBlock((0, 3, 7)))
        art = render_routing(routing)
        lines = art.splitlines()
        assert lines[0].startswith("links:")
        # Edge-disjointness: each link column carries exactly one mark.
        body = [line[10:] for line in lines[1:]]
        for col in range(9):
            marks = sum(1 for row in body if row[col] == "█")
            assert marks == 1

    def test_heatline_shows_classes(self):
        art = render_coverage_heatline(optimal_covering(10))
        assert "d=1" in art and "d=5" in art
        assert "excess" in art  # even coverings have excess somewhere

    def test_heatline_exact_decomposition_no_excess(self):
        art = render_coverage_heatline(optimal_covering(9))
        assert "excess" not in art
