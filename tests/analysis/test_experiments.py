"""Tests for the experiment harness: every experiment must reproduce
the paper's shape (who wins, exact closed-form matches) on small sweeps."""

from __future__ import annotations

from repro.analysis.experiments import (
    experiment_cost_model,
    experiment_lambda_fold,
    experiment_nondrc_baseline,
    experiment_paper_example,
    experiment_solver_certification,
    experiment_survivability,
    experiment_theorem1,
    experiment_theorem2,
    experiment_topologies,
)


class TestTheoremExperiments:
    def test_e1_rows_all_optimal(self):
        result = experiment_theorem1((5, 7, 9, 11, 13))
        for row in result.rows:
            assert row["rho_formula"] == row["constructed"] == row["lower_bound"]
            assert row["c3_formula"] == row["c3_measured"]
            assert row["c4_formula"] == row["c4_measured"]
            assert row["excess_measured"] == 0
            assert row["valid"] and row["optimal"]
        assert "Theorem 1" in result.render()

    def test_e2_rows_all_optimal(self):
        result = experiment_theorem2((4, 6, 8, 10, 12))
        for row in result.rows:
            assert row["rho_formula"] == row["constructed"] == row["lower_bound"]
            assert row["excess_formula"] == row["excess_measured"]
            assert row["valid"] and row["optimal"]

    def test_e1_rejects_even(self):
        import pytest

        with pytest.raises(ValueError):
            experiment_theorem1((6,))

    def test_e2_rejects_odd(self):
        import pytest

        with pytest.raises(ValueError):
            experiment_theorem2((7,))


class TestPaperExample:
    def test_e3_matches_paper(self):
        result = experiment_paper_example()
        by_name = {r["name"]: r for r in result.rows if "routable" in r}
        assert by_name["ring"]["routable"]
        assert not by_name["bad"]["routable"]
        assert by_name["tri1"]["routable"] and by_name["tri2"]["routable"]
        summary = result.rows[-1]
        assert summary["good_valid"]
        assert not summary["bad_drc"]
        assert summary["bad_covers"]  # it covers K4 — only the DRC fails


class TestComparisons:
    def test_e4_theorem_wins_cost(self):
        result = experiment_cost_model((9, 11))
        by_method = {}
        for row in result.rows:
            by_method.setdefault(row["n"], {})[row["method"]] = row
        for n, methods in by_method.items():
            assert methods["theorem"]["cycles"] <= methods["fast"]["cycles"]
            assert methods["theorem"]["cycles"] <= methods["greedy"]["cycles"]
            assert methods["theorem"]["total"] <= methods["fast"]["total"]
            # Theorem coverings attain the ADM lower bound.
            assert methods["theorem"]["adms"] == methods["theorem"]["adm_lb"]

    def test_e5_drc_price_nonnegative(self):
        result = experiment_nondrc_baseline((7, 9, 11))
        for row in result.rows:
            assert row["price"] >= 0
            assert row["greedy3"] >= row["formula"]
            assert row["greedy4"] >= row["lb4"]

    def test_e6_everything_recovers(self):
        result = experiment_survivability((6, 9))
        for row in result.rows:
            assert row["recovered"] == row["failures"]
            assert row["survivable"]
            assert row["mean_affected"] == row["cycles"]


class TestExtensionsAndSolver:
    def test_e8_gaps(self):
        result = experiment_lambda_fold(ns=(5, 7, 6), lams=(1, 2))
        for row in result.rows:
            assert row["valid"]
            assert row["gap"] >= 0
            if row["n"] % 2 == 1:
                assert row["gap"] == 0

    def test_e9_topologies_all_covered(self):
        result = experiment_topologies()
        names = {row["name"] for row in result.rows}
        assert any("ring" in name for name in names)
        assert any("tree-of-rings" in name for name in names)
        assert any("torus" in name for name in names)
        for row in result.rows:
            assert row["cycles"] > 0

    def test_e10_solver_certifies(self):
        result = experiment_solver_certification((4, 5, 6))
        for row in result.rows:
            assert row["match"]
            assert row["nodes"] > 0
