"""Tests for the E9 wavelength extension and E11."""

from __future__ import annotations

from repro.analysis.experiments import (
    experiment_protection_vs_restoration,
    experiment_topologies,
)


class TestE9Wavelengths:
    def test_ring_needs_one_wavelength_per_cycle(self):
        rows = {r["name"]: r for r in experiment_topologies().rows}
        ring = rows["ring-8"]
        assert ring["wavelengths"] == ring["cycles"]

    def test_mesh_saves_wavelengths(self):
        rows = {r["name"]: r for r in experiment_topologies().rows}
        torus = rows["torus-3x3"]
        assert torus["wavelengths"] < torus["cycles"]


class TestE12:
    def test_dual_failures_shape(self):
        from repro.analysis.experiments import experiment_dual_failures

        result = experiment_dual_failures((8, 10))
        for row in result.rows:
            assert row["full"] == 0
            assert 0.0 < row["worst"] <= row["mean"] < 1.0
            assert row["pairs"] == row["n"] * (row["n"] - 1) // 2


class TestE11:
    def test_overheads_and_blast_radius(self):
        result = experiment_protection_vs_restoration((8, 11))
        for row in result.rows:
            assert row["protection_overhead"] == 1.0
            assert row["restoration_overhead"] >= 0.9
            assert row["protection_reroutes_per_failure"] > 0
            assert row["restoration_reroutes_worst"] > 0

    def test_odd_working_capacity_equality(self):
        result = experiment_protection_vs_restoration((11,))
        row = result.rows[0]
        assert row["protection_working"] == row["restoration_working"]

    def test_render_has_both_schemes(self):
        text = experiment_protection_vs_restoration((8,)).render()
        assert "protection" in text and "restoration" in text
