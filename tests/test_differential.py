"""Cross-backend differential property suite — the dispatcher's oracle.

The restricted-cover approximation literature (Manthey; Tang & Diao)
is blunt that heuristic tiers in this regime must be checked
*differentially* against exact solvers, not just on hand-certified
cases.  This suite is that oracle: hypothesis-generated ``CoverSpec``s
(small n, random restricted demands, λ ∈ {1, 2, 3}) asserting that

* ``closed_form`` / ``exact`` / ``exact_sharded`` agree on the optimal
  size wherever more than one of them applies;
* ``heuristic`` never beats the exact optimum and always returns a
  *verified* covering;
* every envelope re-validates from its own JSON via the independent
  :mod:`repro.core.verify` path (DRC routing re-exhibited, coverage
  recounted).

The transports are then tested against this same oracle in
``tests/dispatch/``: each must return envelopes byte-identical to the
in-process solves these properties vouch for.

Ring-size / multiplicity bounds are calibrated so a single example
stays well under a second (λ = 3 instances above n = 7 blow the
instance solver's node budget — that ceiling is itself pinned here).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import CoverSpec, Result, get_backend, solve
from repro.core.verify import verify_covering
from repro.sat.engines import SAT_ENGINE_ENV, available_engines
from repro.util import circular

_GOLDEN_DIR = Path(__file__).parent / "goldens"

# λ → largest ring size the exact instance solver certifies fast enough
# for a property suite (calibrated; λ=1 routes to the K_n solver).
_MAX_N = {1: 9, 2: 9, 3: 7}


def _uniform_specs() -> st.SearchStrategy[CoverSpec]:
    return st.sampled_from([1, 2, 3]).flatmap(
        lambda lam: st.integers(4, _MAX_N[lam]).map(
            lambda n: CoverSpec.for_ring(n, lam=lam)
        )
    )


@st.composite
def _restricted_specs(draw) -> CoverSpec:
    """A random restricted (non-uniform) demand: a subset of chords of
    C_n with multiplicities in {1, 2}."""
    n = draw(st.integers(5, 9))
    all_chords = sorted(
        {circular.chord(a, b) for a in range(n) for b in range(n) if a != b}
    )
    chords = draw(
        st.lists(st.sampled_from(all_chords), min_size=1, max_size=6, unique=True)
    )
    mults = draw(
        st.lists(
            st.integers(1, 2), min_size=len(chords), max_size=len(chords)
        )
    )
    return CoverSpec(
        n=n, demand=tuple((a, b, m) for (a, b), m in zip(chords, mults))
    )


def _exact(spec: CoverSpec) -> Result:
    return solve(
        CoverSpec.from_payload({**spec.to_payload(), "backend": "exact"}),
        cache=None,
    )


def _assert_envelope_valid(result: Result) -> None:
    """Every envelope must survive the independent verifier — *under
    its own objective and size restriction* — and a JSON round-trip
    with verification enabled."""
    spec = result.spec
    report = verify_covering(
        result.covering,
        spec.instance(),
        objective=spec.objective,
        allowed_sizes=spec.allowed_sizes,
    )
    assert report.valid, f"{result.backend} envelope failed verify: {report.problems}"
    assert report.objective == spec.objective
    if result.objective_value is not None:
        assert report.objective_value == result.objective_value
    if result.lower_bound is not None and result.objective_value is not None:
        assert result.lower_bound <= result.objective_value
    roundtrip = Result.from_json(result.to_json(), verify=True)
    assert roundtrip == result
    assert roundtrip.to_json() == result.to_json()


class TestUniformBackendsAgree:
    @settings(max_examples=25, deadline=None)
    @given(spec=_uniform_specs())
    def test_exact_matches_closed_form_and_is_verified(self, spec: CoverSpec):
        exact = _exact(spec)
        assert exact.status == "proven_optimal"
        _assert_envelope_valid(exact)
        closed = get_backend("closed_form")
        if closed.supports(spec):
            formula = closed.run(spec)
            assert formula.num_blocks == exact.num_blocks, (
                f"closed_form={formula.num_blocks} != exact={exact.num_blocks} "
                f"for n={spec.n} λ={spec.lam}"
            )
            _assert_envelope_valid(formula)

    @settings(max_examples=10, deadline=None)
    @given(n=st.integers(5, 9))
    def test_exact_sharded_matches_exact(self, n: int):
        spec = CoverSpec.for_ring(n, use_hints=False)
        exact = _exact(spec)
        sharded = solve(
            CoverSpec.for_ring(n, backend="exact_sharded", use_hints=False, workers=2),
            cache=None,
        )
        assert sharded.status == "proven_optimal"
        assert sharded.num_blocks == exact.num_blocks
        _assert_envelope_valid(sharded)

    @settings(max_examples=25, deadline=None)
    @given(spec=_uniform_specs())
    def test_heuristic_never_beats_exact(self, spec: CoverSpec):
        exact = _exact(spec)
        heur = solve(
            CoverSpec.for_ring(spec.n, lam=spec.lam, require_optimal=False),
            cache=None,
        )
        assert heur.status == "feasible"
        assert heur.num_blocks >= exact.num_blocks, (
            f"heuristic {heur.num_blocks} beat the certified optimum "
            f"{exact.num_blocks} at n={spec.n} λ={spec.lam}"
        )
        _assert_envelope_valid(heur)


class TestRestrictedDemand:
    @settings(max_examples=25, deadline=None)
    @given(spec=_restricted_specs())
    def test_exact_vs_heuristic_on_restricted_covers(self, spec: CoverSpec):
        exact = _exact(spec)
        assert exact.status == "proven_optimal"
        _assert_envelope_valid(exact)
        heur = solve(
            CoverSpec.from_payload(
                {**spec.to_payload(), "backend": "heuristic", "require_optimal": False}
            ),
            cache=None,
        )
        assert heur.num_blocks >= exact.num_blocks
        _assert_envelope_valid(heur)

    @settings(max_examples=25, deadline=None)
    @given(spec=_restricted_specs())
    def test_lower_bound_certificate_holds(self, spec: CoverSpec):
        exact = _exact(spec)
        assert exact.lower_bound is not None
        assert exact.lower_bound <= exact.num_blocks


class TestEnvelopeDeterminism:
    @settings(max_examples=15, deadline=None)
    @given(spec=_uniform_specs())
    def test_same_spec_same_bytes(self, spec: CoverSpec):
        first = solve(spec, cache=None)
        second = solve(spec, cache=None)
        assert first.to_json() == second.to_json()


class TestCrossObjective:
    """The objective axis, checked differentially: for every objective
    the heuristic value dominates the exact optimum, every envelope
    re-verifies under its own objective, and the two objectives relate
    the way the theory says they must."""

    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(4, 8))
    def test_mts_heuristic_never_beats_exact(self, n: int):
        exact = solve(
            CoverSpec.for_ring(n, objective="min_total_size", backend="exact"),
            cache=None,
        )
        assert exact.status == "proven_optimal"
        _assert_envelope_valid(exact)
        heur = solve(
            CoverSpec.for_ring(
                n, objective="min_total_size", require_optimal=False
            ),
            cache=None,
        )
        assert heur.status == "feasible"
        assert heur.objective_value >= exact.objective_value
        _assert_envelope_valid(heur)

    @settings(max_examples=10, deadline=None)
    @given(n=st.integers(5, 8))
    def test_mts_closed_form_matches_exact(self, n: int):
        spec = CoverSpec.for_ring(n, objective="min_total_size")
        closed = get_backend("closed_form")
        assert closed.supports(spec), "closed_form certifies ADM optima for n ≥ 5"
        formula = closed.run(spec)
        exact = solve(
            CoverSpec.for_ring(
                n, objective="min_total_size", backend="exact", use_hints=False
            ),
            cache=None,
        )
        assert formula.objective_value == exact.objective_value
        assert formula.objective_value == formula.lower_bound
        _assert_envelope_valid(formula)
        _assert_envelope_valid(exact)

    def test_mts_n4_exceeds_parity_bound(self):
        """The one All-to-All case where the end-parity bound is not
        attained: 8 slots would need two DRC quads, which cannot reach
        the diagonals of C4, so the certified optimum is 9."""
        result = solve(
            CoverSpec.for_ring(4, objective="min_total_size"), cache=None
        )
        assert result.backend == "exact"
        assert result.status == "proven_optimal"
        assert result.objective_value == 9
        assert result.lower_bound == 8

    @settings(max_examples=15, deadline=None)
    @given(spec=_restricted_specs())
    def test_mts_on_restricted_demand(self, spec: CoverSpec):
        mts = CoverSpec.from_payload(
            {**spec.to_payload(), "objective": "min_total_size", "backend": "exact"}
        )
        exact = solve(mts, cache=None)
        assert exact.status == "proven_optimal"
        _assert_envelope_valid(exact)
        heur = solve(
            CoverSpec.from_payload(
                {
                    **spec.to_payload(),
                    "objective": "min_total_size",
                    "backend": "heuristic",
                    "require_optimal": False,
                }
            ),
            cache=None,
        )
        assert heur.objective_value >= exact.objective_value
        _assert_envelope_valid(heur)

    @settings(max_examples=10, deadline=None)
    @given(n=st.integers(5, 8))
    def test_restricted_cover_triangles_only(self, n: int):
        """min_blocks under allowed_sizes = {3}: certified, admissible,
        and never cheaper than the unrestricted optimum."""
        restricted = solve(
            CoverSpec.for_ring(n, allowed_sizes=(3,)), cache=None
        )
        assert restricted.status == "proven_optimal"
        assert all(blk.size == 3 for blk in restricted.covering.blocks)
        _assert_envelope_valid(restricted)
        free = solve(CoverSpec.for_ring(n, use_hints=False, backend="exact"), cache=None)
        assert restricted.num_blocks >= free.num_blocks

    @settings(max_examples=8, deadline=None)
    @given(n=st.integers(5, 8))
    def test_sharded_matches_serial_across_objectives(self, n: int):
        serial = solve(
            CoverSpec.for_ring(
                n, objective="min_total_size", backend="exact", use_hints=False
            ),
            cache=None,
        )
        sharded = solve(
            CoverSpec.for_ring(
                n,
                objective="min_total_size",
                backend="exact_sharded",
                use_hints=False,
                workers=2,
            ),
            cache=None,
        )
        assert sharded.status == "proven_optimal"
        assert sharded.objective_value == serial.objective_value
        _assert_envelope_valid(sharded)


@pytest.fixture(params=("internal", "pysat"))
def sat_engine(request, monkeypatch):
    """Parametrize a test over both SAT engines via ``REPRO_SAT`` (the
    pysat leg skips cleanly when python-sat is not installed — the
    internal CDCL is the contractual fallback CI always runs)."""
    name = request.param
    if name not in available_engines():
        pytest.skip("python-sat not installed — internal CDCL is the fallback")
    monkeypatch.setenv(SAT_ENGINE_ENV, name)
    return name


def _sat(spec: CoverSpec) -> Result:
    return solve(
        CoverSpec.from_payload(
            {**spec.to_payload(), "backend": "sat", "use_hints": False}
        ),
        cache=None,
    )


class TestSatDifferential:
    """The SAT tier against the exact oracle: same optima, verified
    coverings, replayable certificates — under *both* engines, so the
    internal CDCL can never silently drift from the pysat answer."""

    @pytest.mark.parametrize("n", range(4, 11))
    def test_uniform_matches_certified_optimum(self, n: int, sat_engine):
        sat = _sat(CoverSpec.for_ring(n))
        oracle = solve(CoverSpec.for_ring(n), cache=None)
        assert sat.status == "proven_optimal"
        assert sat.backend == "sat"
        assert sat.num_blocks == oracle.num_blocks, (
            f"sat[{sat_engine}]={sat.num_blocks} != "
            f"{oracle.backend}={oracle.num_blocks} at n={n}"
        )
        assert sat.sat_certificate is not None
        assert sat.sat_certificate["engine"] == sat_engine
        _assert_envelope_valid(sat)

    @pytest.mark.parametrize("n", range(4, 9))
    def test_lambda_fold_matches_exact(self, n: int, sat_engine):
        spec = CoverSpec.for_ring(n, lam=2)
        sat = _sat(spec)
        exact = _exact(spec)
        assert sat.status == "proven_optimal"
        assert sat.num_blocks == exact.num_blocks
        _assert_envelope_valid(sat)

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        n=st.integers(5, 7),
        sizes=st.sampled_from([(3,), (4,), (3, 4)]),
    )
    def test_restricted_pools_match_exact(self, n: int, sizes, sat_engine):
        # Small n only: weak packing bounds make triangle-only pools
        # expensive for B&B and SAT alike beyond n = 7.
        spec = CoverSpec.for_ring(n, allowed_sizes=sizes)
        sat = _sat(spec)
        exact = _exact(spec)
        assert sat.status == "proven_optimal"
        assert sat.num_blocks == exact.num_blocks
        assert all(blk.size in sizes for blk in sat.covering.blocks)
        _assert_envelope_valid(sat)

    def test_certificate_replays(self, sat_engine):
        from repro.sat.backend import replay_unsat_core

        spec = CoverSpec.from_payload(
            {**CoverSpec.for_ring(8).to_payload(), "backend": "sat", "use_hints": False}
        )
        res = solve(spec, cache=None)
        replay_unsat_core(spec, res.sat_certificate, engine=sat_engine)

    def test_engines_agree_on_the_envelope_value(self):
        # Both engines must land the same optimum and the same
        # certificate arithmetic (models may differ; values may not).
        results = {}
        for engine in available_engines():
            import os

            prior = os.environ.get(SAT_ENGINE_ENV)
            os.environ[SAT_ENGINE_ENV] = engine
            try:
                results[engine] = _sat(CoverSpec.for_ring(7))
            finally:
                if prior is None:
                    os.environ.pop(SAT_ENGINE_ENV, None)
                else:
                    os.environ[SAT_ENGINE_ENV] = prior
        values = {r.num_blocks for r in results.values()}
        assert len(values) == 1
        unsat_ks = {r.sat_certificate["unsat_k"] for r in results.values()}
        assert len(unsat_ks) == 1


class TestMinBlocksGoldens:
    """The no-regression anchor of the objective redesign: every
    pre-objective ``min_blocks`` envelope (certification runs, routed
    closed forms, heuristic, λ-fold, restricted demand) must come back
    byte-identical — same spec hashes, same statuses, same node counts,
    same JSON.  BENCH_solver.json's statuses/node counts ride on the
    exact-certification entries."""

    @pytest.fixture(scope="class")
    def goldens(self) -> dict:
        with open(_GOLDEN_DIR / "min_blocks_envelopes.json", encoding="utf-8") as f:
            return json.load(f)

    def test_envelopes_byte_identical(self, goldens):
        for spec_hash, doc in sorted(goldens.items(), key=lambda kv: kv[1]["label"]):
            payload = json.loads(doc["json"])
            spec = CoverSpec.from_payload(payload["spec"])
            assert spec.spec_hash == spec_hash, f"{doc['label']}: spec hash drifted"
            result = solve(spec, cache=None)
            assert result.to_json() == doc["json"], (
                f"{doc['label']}: envelope bytes drifted from the pre-objective golden"
            )

    def test_bench_solver_node_counts_reproduced(self, goldens):
        with open(Path(__file__).parent.parent / "BENCH_solver.json", encoding="utf-8") as f:
            bench = json.load(f)
        by_n = {row["n"]: row for row in bench["rows"]}
        for doc in goldens.values():
            payload = json.loads(doc["json"])
            if payload["backend"] != "exact" or payload["spec"]["use_hints"]:
                continue
            n = payload["spec"]["n"]
            if n not in by_n:
                continue
            assert payload["stats"]["nodes"] == by_n[n]["nodes"], (
                f"n={n}: golden node count diverged from BENCH_solver.json"
            )
            assert payload["status"] == "proven_optimal"
            assert by_n[n]["proven"]


class TestCheckpointResume:
    """Envelope byte-identity across checkpoint/resume histories — the
    differential suite is the oracle the checkpoint subsystem answers
    to.  However a proof is sliced (deadline preemptions, voluntary
    preempt budgets, node-limit overruns), the reassembled envelope
    must be the bytes an uninterrupted solve produces: same covering,
    same node count, same provenance, same JSON."""

    def test_n8_certification_resumes_byte_identical(self, tmp_path):
        from repro.api import CheckpointStore
        from repro.util.errors import SolverPreempted

        spec = CoverSpec.for_ring(8, backend="exact", use_hints=False)
        oracle = solve(spec, cache=None)
        store = CheckpointStore(tmp_path / "ckpts")
        cycles = 0
        while True:
            prior = store.load(spec.spec_hash)
            floor = prior.nodes if prior is not None else 0
            try:
                result = solve(
                    spec,
                    cache=None,
                    checkpoints=store,
                    preempt=lambda st, _f=floor: st.nodes >= _f + 800,
                )
                break
            except SolverPreempted:
                cycles += 1
                assert cycles < 50
                assert store.load(spec.spec_hash) is not None
        assert cycles >= 2  # the proof really was sliced up
        assert result.to_json() == oracle.to_json()
        assert result.stats.nodes == oracle.stats.nodes
        # Runtime lineage is visible in-process but never serialized.
        assert result.provenance["resume"]["resumes"] == cycles
        assert "resume" not in json.loads(result.to_json())["provenance"]
        assert store.load(spec.spec_hash) is None  # success cleans up

    @settings(max_examples=6, deadline=None)
    @given(n=st.integers(5, 8), step=st.integers(280, 1200))
    def test_resume_history_never_changes_bytes(self, n: int, step: int):
        from repro.api import MemoryCheckpointStore
        from repro.util.errors import SolverPreempted

        spec = CoverSpec.for_ring(n, backend="exact", use_hints=False)
        oracle = solve(spec, cache=None)
        store = MemoryCheckpointStore()
        for _ in range(60):
            prior = store.load(spec.spec_hash)
            floor = prior.nodes if prior is not None else 0
            try:
                result = solve(
                    spec,
                    cache=None,
                    checkpoints=store,
                    preempt=lambda st, _f=floor: st.nodes >= _f + step,
                )
                break
            except SolverPreempted:
                continue
        else:
            pytest.fail("preemption never converged")
        assert result.to_json() == oracle.to_json()
        _assert_envelope_valid(result)
