"""End-to-end tests for the registered ``sat`` backend.

Small rings keep every certification under a second while still
exercising the full walk: incumbent → downward assumption walk → UNSAT
core → replayable certificate → verified covering.
"""

from __future__ import annotations

import pytest

from repro.api import CoverSpec, solve
from repro.api.backends import get_backend
from repro.api.checkpoints import MemoryCheckpointStore
from repro.core.covering import Covering
from repro.core.verify import verify_covering
from repro.sat.backend import SAT_MAX_N, replay_unsat_core
from repro.util.errors import SolverError, SolverPreempted

BACKEND = get_backend("sat")


def sat_spec(n, **kwargs):
    kwargs.setdefault("backend", "sat")
    kwargs.setdefault("use_hints", False)
    return CoverSpec.for_ring(n, **kwargs)


class TestSupports:
    def test_ring_range(self):
        assert BACKEND.supports(sat_spec(3))
        assert BACKEND.supports(sat_spec(SAT_MAX_N))
        assert not BACKEND.supports(CoverSpec.for_ring(SAT_MAX_N + 1, backend="sat"))

    def test_min_blocks_only(self):
        spec = CoverSpec.for_ring(8, objective="min_total_size", backend="sat")
        assert not BACKEND.supports(spec)


class TestCertification:
    @pytest.mark.parametrize("n,expected", [(5, 3), (6, 5), (7, 6), (8, 9)])
    def test_known_optima(self, n, expected):
        res = solve(sat_spec(n))
        assert res.status == "proven_optimal"
        assert res.backend == "sat"
        assert res.stats.best_value == expected
        assert res.lower_bound == expected
        assert res.stats.proven_optimal

    def test_covering_verifies(self):
        res = solve(sat_spec(7))
        report = verify_covering(res.covering, res.spec.instance())
        assert report.valid, report.problems

    def test_certificate_shape(self):
        res = solve(sat_spec(6))
        cert = res.sat_certificate
        assert cert is not None
        assert cert["optimum"] == 5
        assert cert["unsat_k"] == 4
        assert cert["engine"] in ("internal", "pysat")
        assert cert["encoding"]["strengthening"] == "counting_budget"
        assert "sat_unsat_core" in res.certificates

    def test_lambda_fold_agrees_with_exact(self):
        spec = sat_spec(6, lam=2)
        res = solve(spec)
        exact = solve(CoverSpec.for_ring(6, lam=2, backend="exact"))
        assert res.stats.best_value == exact.stats.best_value

    def test_restricted_pool(self):
        res = solve(sat_spec(6, allowed_sizes=(3,)))
        exact = solve(CoverSpec.for_ring(6, allowed_sizes=(3,), backend="exact"))
        assert res.stats.best_value == exact.stats.best_value
        for block in res.covering.blocks:
            assert len(block) == 3

    def test_envelope_json_round_trip(self):
        from repro.api.result import Result

        res = solve(sat_spec(6))
        payload = res.to_json()
        again = Result.from_json(payload)
        assert again.to_json() == payload
        assert again.sat_certificate == res.sat_certificate


class TestReplay:
    def test_replay_accepts_genuine_certificate(self):
        spec = sat_spec(7)
        res = solve(spec)
        replay_unsat_core(spec, res.sat_certificate)

    def test_replay_rejects_tampered_optimum(self):
        spec = sat_spec(7)
        res = solve(spec)
        cert = dict(res.sat_certificate)
        cert["unsat_k"] = cert["unsat_k"] - 1
        with pytest.raises(SolverError):
            replay_unsat_core(spec, cert)

    def test_replay_rejects_wrong_spec(self):
        res = solve(sat_spec(7))
        with pytest.raises(SolverError):
            replay_unsat_core(sat_spec(8), res.sat_certificate)


class TestInterrupts:
    def test_preempt_then_resume_is_byte_identical(self):
        spec = sat_spec(8)
        reference = BACKEND.run(spec)

        store = MemoryCheckpointStore()
        floor = 40
        preempts = 0
        while True:
            try:
                res = BACKEND.run(
                    spec,
                    checkpoints=store,
                    preempt=(lambda st, f=floor: st.nodes > f),
                )
                break
            except SolverPreempted as exc:
                assert exc.checkpoint is not None
                assert exc.checkpoint.kind == "sat"
                preempts += 1
                floor += 40
                assert preempts < 50, "walk is not making progress"
        assert preempts >= 1, "preempt floor never fired — raise the test's n"
        assert res.to_json() == reference.to_json()
        assert res.provenance["resume"]["resumed"] is True

    def test_node_limit_raises_solver_error(self):
        with pytest.raises(SolverError, match="node limit"):
            BACKEND.run(sat_spec(8, node_limit=30))

    def test_deadline_raises_preempted_with_checkpoint(self):
        with pytest.raises(SolverPreempted) as excinfo:
            BACKEND.run(sat_spec(10, time_budget=0.05))
        assert excinfo.value.checkpoint is not None

    def test_engine_mismatch_refuses_resume(self):
        spec = sat_spec(8)
        store = MemoryCheckpointStore()
        with pytest.raises(SolverPreempted):
            BACKEND.run(spec, checkpoints=store, preempt=lambda st: st.nodes > 40)
        ckpt = store.load(spec.spec_hash)
        assert ckpt is not None
        ckpt.sat_state["engine"] = "martian"
        store.save(spec.spec_hash, ckpt)
        with pytest.raises(SolverError, match="engine"):
            BACKEND.run(spec, checkpoints=store)


class TestCheckpointPayload:
    def test_sat_checkpoint_round_trips(self):
        from repro.core.checkpoint import SearchCheckpoint

        spec = sat_spec(8)
        store = MemoryCheckpointStore()
        with pytest.raises(SolverPreempted):
            BACKEND.run(spec, checkpoints=store, preempt=lambda st: st.nodes > 40)
        ckpt = store.load(spec.spec_hash)
        payload = ckpt.to_payload()
        again = SearchCheckpoint.from_payload(payload)
        assert again.kind == "sat"
        assert again.sat_state == ckpt.sat_state
        assert again.to_payload() == payload
