"""Unit tests for the dependency-free CDCL solver.

The internal engine is the contractual fallback for ``REPRO_SAT`` — it
must be correct on its own, not just "agree with pysat when pysat
happens to be installed".  These tests exercise the solver against
brute-force truth-table enumeration on random small formulas plus the
classic structured families (pigeonhole, ordering chains).
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.sat.cdcl import Cdcl, luby


def brute_force_sat(num_vars: int, clauses) -> bool:
    for bits in itertools.product([False, True], repeat=num_vars):
        if all(any(bits[abs(l) - 1] == (l > 0) for l in c) for c in clauses):
            return True
    return False


def check_model(model, clauses) -> bool:
    return all(any(model[abs(l)] == (l > 0) for l in c) for c in clauses)


class TestLuby:
    def test_prefix(self):
        # The canonical Luby sequence (Luby–Sinclair–Zuckerman 1993).
        assert [luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]

    def test_powers_of_two_at_boundaries(self):
        for k in range(1, 10):
            assert luby(2**k - 1) == 2 ** (k - 1)


class TestBasics:
    def test_empty_formula_is_sat(self):
        s = Cdcl()
        assert s.solve() is True

    def test_unit_propagation(self):
        s = Cdcl()
        s.ensure_vars(2)
        s.add_clause([1])
        s.add_clause([-1, 2])
        assert s.solve() is True
        assert s.model[1] is True and s.model[2] is True

    def test_trivially_unsat(self):
        s = Cdcl()
        s.ensure_vars(1)
        s.add_clause([1])
        assert s.add_clause([-1]) is False or s.solve() is False

    def test_empty_clause_rejected(self):
        s = Cdcl()
        assert s.add_clause([]) is False
        assert s.solve() is False

    def test_tautological_clause_ignored(self):
        s = Cdcl()
        s.ensure_vars(1)
        assert s.add_clause([1, -1]) is True
        assert s.solve() is True


class TestPigeonhole:
    @pytest.mark.parametrize("holes", [2, 3, 4])
    def test_php_is_unsat(self, holes):
        # holes+1 pigeons into `holes` holes: the canonical hard UNSAT
        # family for resolution-based solvers.
        pigeons = holes + 1
        s = Cdcl()
        var = {}
        for p in range(pigeons):
            for h in range(holes):
                var[p, h] = s.new_var()
        for p in range(pigeons):
            s.add_clause([var[p, h] for h in range(holes)])
        for h in range(holes):
            for p1, p2 in itertools.combinations(range(pigeons), 2):
                s.add_clause([-var[p1, h], -var[p2, h]])
        assert s.solve() is False
        assert s.conflicts > 0


class TestRandomFormulas:
    @pytest.mark.parametrize("seed", range(10))
    def test_agrees_with_brute_force(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(4, 9)
        num_clauses = rng.randint(num_vars, 4 * num_vars)
        clauses = []
        for _ in range(num_clauses):
            width = rng.randint(1, 3)
            lits = rng.sample(range(1, num_vars + 1), width)
            clauses.append([l if rng.random() < 0.5 else -l for l in lits])
        expected = brute_force_sat(num_vars, clauses)

        s = Cdcl()
        s.ensure_vars(num_vars)
        ok = True
        for c in clauses:
            ok = s.add_clause(c) and ok
        got = ok and s.solve()
        assert got == expected
        if got:
            assert check_model(s.model, clauses)

    def test_deterministic_across_runs(self):
        def run():
            rng = random.Random(99)
            s = Cdcl()
            s.ensure_vars(12)
            for _ in range(50):
                lits = rng.sample(range(1, 13), 3)
                s.add_clause([l if rng.random() < 0.5 else -l for l in lits])
            sat = s.solve()
            return sat, dict(s.model) if sat else None, s.conflicts, s.decisions

        assert run() == run()


class TestAssumptions:
    def test_assumption_forces_polarity(self):
        s = Cdcl()
        s.ensure_vars(2)
        s.add_clause([-1, 2])
        assert s.solve(assumptions=[1]) is True
        assert s.model[1] is True and s.model[2] is True
        assert s.solve(assumptions=[-1]) is True
        assert s.model[1] is False

    def test_unsat_core_names_the_culprit(self):
        s = Cdcl()
        s.ensure_vars(3)
        s.add_clause([-1, -2])  # 1 and 2 can't both hold
        assert s.solve(assumptions=[1, 2, 3]) is False
        core = set(s.core)
        # 3 is irrelevant; the core must implicate 1 and/or 2 only.
        assert core and core <= {1, 2}

    def test_solver_reusable_after_assumption_unsat(self):
        s = Cdcl()
        s.ensure_vars(2)
        s.add_clause([-1, -2])
        assert s.solve(assumptions=[1, 2]) is False
        # Same solver, relaxed assumptions: SAT again.
        assert s.solve(assumptions=[1]) is True
        assert s.model[2] is False

    def test_contradictory_assumptions(self):
        s = Cdcl()
        s.ensure_vars(1)
        assert s.solve(assumptions=[1, -1]) is False
        assert set(s.core) <= {1, -1}


class TestOnTick:
    def test_on_tick_fires_during_search(self):
        rng = random.Random(7)
        s = Cdcl()
        s.ensure_vars(20)
        for _ in range(90):
            lits = rng.sample(range(1, 21), 3)
            s.add_clause([l if rng.random() < 0.5 else -l for l in lits])
        ticks = []
        s.solve(on_tick=lambda: ticks.append(s.conflicts), tick_every=1)
        assert ticks, "tick callback never fired"
