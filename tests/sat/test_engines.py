"""The ``REPRO_SAT`` engine contract, mirroring the kernel probe tests.

The env var must behave identically whether or not python-sat is
installed: unknown names fail loudly with the runnable list, an
explicit ``pysat`` request degrades silently to the internal CDCL when
the package is absent, and ``REPRO_NO_PYSAT`` forces the fallback leg
for CI parity runs.
"""

from __future__ import annotations

import pytest

from repro.sat.engines import (
    NO_PYSAT_ENV,
    SAT_ENGINE_ENV,
    SAT_ENGINES,
    available_engines,
    new_solver,
    pysat_available,
    resolve_engine,
)
from repro.util.errors import SolverError


class TestResolveEngine:
    def test_default_is_a_runnable_engine(self, monkeypatch):
        monkeypatch.delenv(SAT_ENGINE_ENV, raising=False)
        assert resolve_engine() in available_engines()

    def test_internal_always_runnable(self, monkeypatch):
        monkeypatch.setenv(SAT_ENGINE_ENV, "internal")
        assert resolve_engine() == "internal"
        assert "internal" in available_engines()

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(SAT_ENGINE_ENV, "internal")
        assert resolve_engine("internal") == "internal"

    def test_unknown_engine_names_the_runnable_set(self, monkeypatch):
        monkeypatch.setenv(SAT_ENGINE_ENV, "chaff")
        with pytest.raises(SolverError) as excinfo:
            resolve_engine()
        msg = str(excinfo.value)
        assert "chaff" in msg
        assert "internal" in msg

    def test_no_pysat_override_forces_internal(self, monkeypatch):
        monkeypatch.setenv(NO_PYSAT_ENV, "1")
        assert pysat_available() is False
        assert available_engines() == ("internal",)
        monkeypatch.setenv(SAT_ENGINE_ENV, "pysat")
        # Explicit pysat without the package degrades to the fallback.
        assert resolve_engine() == "internal"

    def test_auto_resolves(self, monkeypatch):
        monkeypatch.setenv(SAT_ENGINE_ENV, "auto")
        assert resolve_engine() in SAT_ENGINES


class TestNewSolver:
    def test_internal_solver_round_trip(self):
        s = new_solver("internal")
        s.ensure_vars(2)
        s.add_clause([1, 2])
        s.add_clause([-1])
        assert s.solve() is True
        assert s.model[2] is True

    def test_pysat_leg_when_available(self):
        if not pysat_available():
            pytest.skip("python-sat not installed — internal is the fallback")
        s = new_solver("pysat")
        s.ensure_vars(2)
        s.add_clause([1, 2])
        s.add_clause([-1])
        assert s.solve() is True
        assert s.model[2] is True

    def test_unknown_solver_name_raises(self):
        with pytest.raises(SolverError):
            new_solver("chaff")
