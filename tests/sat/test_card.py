"""Brute-force audits of the cardinality layer.

Totalizer/at-least encodings are where SAT backends silently go wrong:
an off-by-one in a merge node yields "optimal" answers one block off
with no crash.  Every encoding here is checked against exhaustive
enumeration over the free variables.
"""

from __future__ import annotations

import itertools

import pytest

from repro.sat.card import CardinalityBound, Totalizer, at_least
from repro.sat.cdcl import Cdcl


def assignments(num_free):
    return itertools.product([False, True], repeat=num_free)


def force(solver, free_vars, bits):
    return [v if b else -v for v, b in zip(free_vars, bits)]


class TestTotalizer:
    @pytest.mark.parametrize("weights", [(1, 1, 1), (1, 2, 3), (2, 2, 5), (1,)])
    @pytest.mark.parametrize("cap", [1, 3, 6])
    def test_geq_matches_arithmetic(self, weights, cap):
        s = Cdcl()
        free = [s.new_var() for _ in weights]
        tot = Totalizer(s, list(zip(free, weights)), cap)
        # Sums above ``cap`` clamp onto the single overflow value.
        assert tot.max_value <= cap + 1

        for target in range(1, tot.max_value + 1):
            out = tot.geq(target)
            assert out is not None
            for bits in assignments(len(free)):
                total = sum(w for w, b in zip(weights, bits) if b)
                # Forcing the inputs AND ¬out must be UNSAT exactly
                # when the (clamped) weighted sum reaches the target —
                # the encoding is one-directional: sum ≥ t ⇒ out.
                sat = s.solve(assumptions=force(s, free, bits) + [-out])
                if min(total, cap + 1) >= target:
                    assert not sat, (weights, cap, target, bits)
                else:
                    assert sat, (weights, cap, target, bits)

    def test_unreachable_target_is_none(self):
        s = Cdcl()
        free = [s.new_var() for _ in range(3)]
        tot = Totalizer(s, [(v, 2) for v in free], 10)
        # Odd sums are unreachable with all-even weights.
        assert tot.geq(3) is not None or tot.geq(4) is not None
        assert tot.geq(7) is None

    def test_target_beyond_overflow_raises(self):
        from repro.util.errors import SolverError

        s = Cdcl()
        free = [s.new_var() for _ in range(3)]
        tot = Totalizer(s, [(v, 1) for v in free], 2)
        with pytest.raises(SolverError):
            tot.geq(4)  # cap + 2: clamped away at build time
        with pytest.raises(SolverError):
            tot.geq(0)

    def test_outputs_are_monotone(self):
        # geq(t) ⇒ geq(t-1): the ordering clauses inside the root node.
        s = Cdcl()
        free = [s.new_var() for _ in range(4)]
        tot = Totalizer(s, [(v, 2) for v in free], 8)
        for t in range(2, tot.max_value + 1):
            hi, lo = tot.geq(t), tot.geq(t - 1)
            if hi is None or lo is None:
                continue
            assert not s.solve(assumptions=[hi, -lo])


class TestCardinalityBound:
    @pytest.mark.parametrize("n_sel,k_max", [(4, 3), (5, 5), (3, 1)])
    def test_assumption_caps_selection(self, n_sel, k_max):
        s = Cdcl()
        sel = [s.new_var() for _ in range(n_sel)]
        card = CardinalityBound(s, sel, k_max)
        for k in range(min(k_max, n_sel)):
            lit = card.assumption(k)
            assert lit is not None
            for bits in assignments(n_sel):
                count = sum(bits)
                sat = s.solve(assumptions=force(s, sel, bits) + [lit])
                assert sat == (count <= k), (n_sel, k_max, k, bits)

    def test_guard_is_negated_assumption(self):
        s = Cdcl()
        sel = [s.new_var() for _ in range(4)]
        card = CardinalityBound(s, sel, 3)
        for k in range(3):
            g, a = card.guard(k), card.assumption(k)
            if g is None:
                assert a is None
            else:
                assert a == -g


class TestAtLeast:
    @pytest.mark.parametrize("n_lits,m", [(3, 1), (4, 2), (4, 4), (5, 3)])
    def test_matches_arithmetic(self, n_lits, m):
        s = Cdcl()
        free = [s.new_var() for _ in range(n_lits)]
        at_least(s, free, m)
        for bits in assignments(n_lits):
            sat = s.solve(assumptions=force(s, free, bits))
            assert sat == (sum(bits) >= m), (n_lits, m, bits)

    def test_infeasible_demand_raises(self):
        from repro.util.errors import SolverError

        s = Cdcl()
        free = [s.new_var() for _ in range(2)]
        with pytest.raises(SolverError, match="unsatisfiable"):
            at_least(s, free, 3)
