"""Encoding tests: the CNF layer is deterministic and replayable.

Certificates replay by rebuilding the encoding from ``(spec, k_start)``
and comparing SHA-256 digests, so the builder's determinism is itself a
contract — variable numbering, clause order, and the DIMACS rendering
must be byte-stable across processes and sessions.
"""

from __future__ import annotations

import pytest

from repro.api import CoverSpec
from repro.sat.cdcl import Cdcl
from repro.sat.cnf import Cnf, attach_walk_layers, build_covering_cnf
from repro.util.errors import SolverError


def load(enc):
    s = Cdcl()
    s.ensure_vars(enc.cnf.num_vars)
    for clause in enc.cnf.clauses:
        if not s.add_clause(clause):
            return s, False
    return s, True


class TestCnfContainer:
    def test_rejects_out_of_range_literals(self):
        cnf = Cnf()
        cnf.new_var()
        with pytest.raises(SolverError):
            cnf.add_clause([2])
        with pytest.raises(SolverError):
            cnf.add_clause([0])

    def test_sha_tracks_content(self):
        a, b = Cnf(), Cnf()
        a.new_var()
        b.new_var()
        a.add_clause([1])
        b.add_clause([1])
        assert a.sha256() == b.sha256()
        b.add_clause([-1])
        assert a.sha256() != b.sha256()

    def test_dimacs_header(self):
        cnf = Cnf()
        v = cnf.new_var()
        cnf.add_clause([v])
        text = cnf.dimacs()
        assert text.startswith("p cnf 1 1")
        assert "1 0" in text


class TestBuildDeterminism:
    def test_same_spec_same_digest(self):
        spec = CoverSpec.for_ring(7)
        a = build_covering_cnf(spec)
        b = build_covering_cnf(spec)
        assert a.cnf.sha256() == b.cnf.sha256()
        assert a.selectors == b.selectors
        assert a.blocks == b.blocks

    def test_walk_layers_are_deterministic_too(self):
        spec = CoverSpec.for_ring(8)
        a = build_covering_cnf(spec)
        attach_walk_layers(a, 11)
        b = build_covering_cnf(spec)
        attach_walk_layers(b, 11)
        assert a.cnf.sha256() == b.cnf.sha256()
        assert a.trivial_below == b.trivial_below

    def test_different_k_start_different_digest(self):
        spec = CoverSpec.for_ring(8)
        a = build_covering_cnf(spec)
        attach_walk_layers(a, 11)
        b = build_covering_cnf(spec)
        attach_walk_layers(b, 10)
        assert a.cnf.sha256() != b.cnf.sha256()

    def test_provenance_names_the_strengthening(self):
        spec = CoverSpec.for_ring(7)
        enc = build_covering_cnf(spec)
        attach_walk_layers(enc, 9)
        prov = enc.provenance()
        assert prov["strengthening"] == "counting_budget"
        assert prov["cnf_sha256"] == enc.cnf.sha256()
        assert prov["k_start"] == 9
        assert prov["variables"] == enc.cnf.num_vars


class TestEncodingSemantics:
    def test_budget_arithmetic(self):
        spec = CoverSpec.for_ring(7)
        enc = build_covering_cnf(spec)
        assert enc.budget(9) == 7 * 9 - enc.total_distance
        # ρ(n) · n ≥ total distance: the paper's counting bound.
        assert enc.budget(0) < 0

    def test_slack_items_are_non_tight_blocks(self):
        spec = CoverSpec.for_ring(8)
        enc = build_covering_cnf(spec)
        for var, slack in enc.slack_items:
            bi = next(b for v, b, _ in enc.selectors if v == var)
            assert slack == 8 - enc.masses[bi] > 0

    def test_base_encoding_decodes_to_valid_covering(self):
        from repro.core.covering import Covering
        from repro.core.verify import verify_covering

        spec = CoverSpec.for_ring(6)
        enc = build_covering_cnf(spec)
        s, ok = load(enc)
        assert ok and s.solve()
        blocks = enc.decode(lambda var: s.model.get(var, False))
        covering = Covering.from_vertex_lists(6, blocks)
        report = verify_covering(covering, spec.instance())
        assert report.valid, report.problems

    def test_assumption_walk_finds_the_optimum(self):
        # ρ(7) = 6: k = 6 SAT, k = 5 UNSAT with the core naming the
        # assumption literal — the certificate's shape in miniature.
        spec = CoverSpec.for_ring(7)
        enc = build_covering_cnf(spec)
        attach_walk_layers(enc, 7)
        s, ok = load(enc)
        assert ok
        assert s.solve(assumptions=[enc.assumption(6)]) is True
        assert s.solve(assumptions=[enc.assumption(5)]) is False
        assert s.core == (enc.assumption(5),)

    def test_symmetry_breaking_preserves_satisfiability(self):
        # The dihedral clause prunes the orbit, never the optimum.
        spec = CoverSpec.for_ring(9)
        enc = build_covering_cnf(spec)
        assert enc.symmetry is not None
        attach_walk_layers(enc, 12)
        s, ok = load(enc)
        assert ok
        assert s.solve(assumptions=[enc.assumption(12)]) is True

    def test_trivial_below_marks_counting_refuted_ks(self):
        spec = CoverSpec.for_ring(7)
        enc = build_covering_cnf(spec)
        attach_walk_layers(enc, 9)
        # Below trivial_below the counting bound alone refutes — the
        # budget is negative before any clause is touched.  When every
        # negative-budget k still has a guard literal, unit guard
        # clauses carry the refutation instead and trivial_below is 0.
        floor = enc.trivial_below or 0
        if floor:
            assert enc.budget(floor - 1) < 0
        for k in range(floor, 7):
            assert enc.assumption(k) is not None

    def test_assumption_beyond_selectors_is_vacuous(self):
        spec = CoverSpec.for_ring(6)
        enc = build_covering_cnf(spec)
        attach_walk_layers(enc, len(enc.selectors) + 3)
        assert enc.assumption(len(enc.selectors)) is None
