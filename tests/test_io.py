"""Tests for covering persistence (JSON round-trips, corruption)."""

from __future__ import annotations

import json

import pytest

from repro.core.blocks import CycleBlock
from repro.core.construction import optimal_covering
from repro.core.covering import Covering
from repro.io import covering_from_json, covering_to_json, load_covering, save_covering
from repro.util.errors import InvalidCoveringError


class TestRoundTrip:
    @pytest.mark.parametrize("n", (7, 10))
    def test_memory_roundtrip(self, n):
        cov = optimal_covering(n)
        again = covering_from_json(covering_to_json(cov))
        assert again.n == cov.n
        assert again.blocks == cov.blocks

    def test_file_roundtrip(self, tmp_path):
        cov = optimal_covering(9)
        path = save_covering(cov, tmp_path / "nested" / "k9.json", meta={"source": "test"})
        assert path.exists()
        again = load_covering(path, verify=True)
        assert again.blocks == cov.blocks

    def test_meta_preserved_in_document(self):
        text = covering_to_json(optimal_covering(5), meta={"k": 1})
        assert json.loads(text)["meta"] == {"k": 1}


class TestCorruption:
    def test_not_json(self):
        with pytest.raises(InvalidCoveringError, match="JSON"):
            covering_from_json("not json {")

    def test_wrong_format_tag(self):
        with pytest.raises(InvalidCoveringError, match="format"):
            covering_from_json(json.dumps({"format": "other", "version": 1}))

    def test_wrong_version(self):
        doc = json.loads(covering_to_json(optimal_covering(5)))
        doc["version"] = 99
        with pytest.raises(InvalidCoveringError, match="version"):
            covering_from_json(json.dumps(doc))

    def test_malformed_blocks(self):
        doc = json.loads(covering_to_json(optimal_covering(5)))
        doc["blocks"][0] = [0, 0, 0]
        with pytest.raises(InvalidCoveringError):
            covering_from_json(json.dumps(doc))

    def test_verify_catches_invalid_content(self):
        # Structurally fine JSON, but the covering misses requests.
        bad = Covering(5, (CycleBlock((0, 1, 2)),))
        text = covering_to_json(bad)
        covering_from_json(text)  # parses fine without verification
        with pytest.raises(InvalidCoveringError, match="uncovered"):
            covering_from_json(text, verify=True)

    def test_non_dict_document(self):
        with pytest.raises(InvalidCoveringError):
            covering_from_json(json.dumps([1, 2, 3]))


class TestSchemaVersioning:
    """The "version" field contract: legacy integers parse as (major, 0),
    newer minors of a known major are accepted, unknown majors and
    malformed strings are rejected."""

    def _doc(self):
        return json.loads(covering_to_json(optimal_covering(5)))

    def test_documents_carry_major_minor_version(self):
        assert self._doc()["version"] == "1.1"

    def test_legacy_integer_version_accepted(self):
        doc = self._doc()
        doc["version"] = 1
        assert covering_from_json(json.dumps(doc)).n == 5

    def test_newer_minor_of_same_major_accepted(self):
        doc = self._doc()
        doc["version"] = "1.9"
        assert covering_from_json(json.dumps(doc)).n == 5

    def test_unknown_major_rejected(self):
        doc = self._doc()
        doc["version"] = "2.0"
        with pytest.raises(InvalidCoveringError, match="version"):
            covering_from_json(json.dumps(doc))

    def test_missing_version_rejected(self):
        doc = self._doc()
        del doc["version"]
        with pytest.raises(InvalidCoveringError, match="version"):
            covering_from_json(json.dumps(doc))

    @pytest.mark.parametrize("bad", ["one.two", "1.x", True, 1.5, None])
    def test_malformed_version_rejected(self, bad):
        doc = self._doc()
        doc["version"] = bad
        with pytest.raises(InvalidCoveringError, match="version"):
            covering_from_json(json.dumps(doc))
