"""Tests for the restoration-dimensioning baseline (paper §1 contrast)."""

from __future__ import annotations

import pytest

from repro.survivability.restoration import (
    dimension_restoration,
    protection_vs_restoration,
)
from repro.traffic.instances import from_requests
from repro.util import circular


class TestDimensioning:
    @pytest.mark.parametrize("n", (6, 9, 12))
    def test_working_load_equals_total_shortest_distance(self, n):
        r = dimension_restoration(n)
        assert r.total_working == circular.total_chord_distance(n)

    def test_spare_covers_every_failure(self):
        """Recompute each failure's reroute load and check the plan's
        spare dominates it on every surviving link."""
        n = 8
        r = dimension_restoration(n)
        from repro.rings.routing import route_request_shortest

        arcs = {
            (a, b): route_request_shortest(n, a, b)
            for a in range(n)
            for b in range(a + 1, n)
        }
        for f in range(n):
            extra = [0] * n
            for arc in arcs.values():
                if arc.uses_link(f):
                    for link in arc.reversed_arc().links():
                        extra[link] += 1
            for link in range(n):
                if link != f:
                    assert r.spare_required[link] >= extra[link]

    def test_ring_restoration_saves_nothing(self):
        """The headline finding: on a ring the pooled spare equals the
        working load — restoration has no capacity advantage."""
        for n in (7, 10, 13):
            r = dimension_restoration(n)
            assert r.spare_ratio == pytest.approx(1.0, abs=0.05)

    def test_sparse_instance(self):
        inst = from_requests(8, [(0, 1), (4, 5)])
        r = dimension_restoration(8, inst)
        assert r.total_working == 2
        # Each failure reroutes at most one of the two short demands.
        assert r.worst_failure_reroutes == 1

    def test_instance_mismatch(self):
        with pytest.raises(ValueError):
            dimension_restoration(8, from_requests(7, [(0, 1)]))

    def test_summary(self):
        assert "restoration" in dimension_restoration(6).summary()


class TestComparison:
    @pytest.mark.parametrize("n", (9, 12))
    def test_shape_of_paper_claim(self, n):
        c = protection_vs_restoration(n)
        # Both schemes carry 100%-ish spare on a ring...
        assert c["protection_overhead"] == 1.0
        assert c["restoration_overhead"] >= 0.9
        # ...but protection's blast radius is bounded by the covering
        # (one reroute per subnetwork) and switching is local.
        assert c["protection_reroutes_per_failure"] <= c["restoration_reroutes_worst"] + 1

    def test_odd_ring_working_capacity_matches(self):
        """For odd n the exact decomposition's working capacity equals
        shortest-path working capacity (every block is tight)."""
        c = protection_vs_restoration(11)
        assert c["protection_working"] == c["restoration_working"]

    def test_even_ring_small_overbuild(self):
        c = protection_vs_restoration(8)
        overbuild = c["protection_working"] - c["restoration_working"]
        assert 0 < overbuild <= 8  # one extra wavelength-ring at most
