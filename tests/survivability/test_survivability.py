"""Tests for failure simulation and automatic protection switching."""

from __future__ import annotations

import pytest

from repro.survivability.failures import (
    LinkFailure,
    NodeFailure,
    all_link_failures,
    all_node_failures,
)
from repro.survivability.metrics import evaluate_survivability
from repro.survivability.protection import ProtectionSimulator
from repro.util.errors import ReproError
from repro.wdm.design import design_ring_network


class TestFailureEvents:
    def test_link_failure_endpoints(self):
        assert LinkFailure(6, 5).endpoints == (5, 0)

    def test_node_failure_dead_links(self):
        assert NodeFailure(6, 0).dead_links == (5, 0)
        assert NodeFailure(6, 3).dead_links == (2, 3)

    def test_sweep_generators(self):
        assert len(all_link_failures(7)) == 7
        assert len(all_node_failures(7)) == 7

    def test_bounds(self):
        with pytest.raises(ValueError):
            LinkFailure(5, 5)


class TestLinkFailures:
    def test_single_cut_fully_recovered(self, design11):
        sim = ProtectionSimulator(design11)
        outcome = sim.simulate_link_failure(LinkFailure(11, 4))
        assert outcome.fully_recovered
        assert outcome.protection_conflicts == 0
        # Exactly one request per subnetwork crosses any given link.
        assert outcome.affected_requests == design11.covering.num_blocks

    def test_reroute_avoids_failed_link(self, design11):
        sim = ProtectionSimulator(design11)
        outcome = sim.simulate_link_failure(LinkFailure(11, 0))
        for ev in outcome.reroutes:
            assert not ev.protection_arc.uses_link(0)
            assert ev.working_arc.uses_link(0)
            assert ev.protection_arc.request == ev.request

    def test_protection_lengths_complement(self, design8):
        sim = ProtectionSimulator(design8)
        outcome = sim.simulate_link_failure(LinkFailure(8, 3))
        for ev in outcome.reroutes:
            assert ev.working_arc.length + ev.protection_arc.length == 8
            assert ev.stretch >= 1.0 or ev.working_arc.length > 4

    def test_sweep_all_links(self, design8):
        sim = ProtectionSimulator(design8)
        outcomes = sim.sweep_link_failures()
        assert len(outcomes) == 8
        assert all(o.fully_recovered for o in outcomes)
        assert len(sim.history) == 8

    def test_wrong_ring_rejected(self, design8):
        sim = ProtectionSimulator(design8)
        with pytest.raises(ReproError):
            sim.simulate_link_failure(LinkFailure(9, 0))


class TestNodeFailures:
    def test_terminated_counted(self, design11):
        sim = ProtectionSimulator(design11)
        outcome = sim.simulate_node_failure(NodeFailure(11, 3))
        assert outcome.terminated_requests == 10  # degree of the node in K_11
        assert outcome.recovered_requests + outcome.unrecovered_requests <= 45

    def test_transit_survival_reported(self, design8):
        sim = ProtectionSimulator(design8)
        outcome = sim.simulate_node_failure(NodeFailure(8, 0))
        assert 0.0 <= outcome.transit_survival_rate <= 1.0

    def test_wrong_ring_rejected(self, design8):
        sim = ProtectionSimulator(design8)
        with pytest.raises(ReproError):
            sim.simulate_node_failure(NodeFailure(9, 0))


class TestMetrics:
    @pytest.mark.parametrize("n", (6, 9, 12))
    def test_full_survivability(self, n):
        report = evaluate_survivability(design_ring_network(n))
        assert report.fully_survivable
        assert report.failures_simulated == n
        assert report.capacity_overhead == 1.0
        # One reroute per subnetwork per failure.
        assert report.mean_affected_per_failure == report.num_subnetworks
        assert report.total_reroutes == n * report.num_subnetworks

    def test_summary_text(self, design8):
        report = evaluate_survivability(design8)
        assert "recovered" in report.summary()
        assert "overhead" in report.summary()
