"""Tests for dual-failure analysis (beyond the paper's design point)."""

from __future__ import annotations

import pytest

from repro.survivability.dual import analyze_dual_failures
from repro.util.errors import ReproError
from repro.wdm.design import design_ring_network


class TestDualFailures:
    @pytest.mark.parametrize("n", (6, 9, 12))
    def test_accounting_consistent(self, n):
        design = design_ring_network(n)
        report = analyze_dual_failures(design)
        assert len(report.outcomes) == n * (n - 1) // 2
        total_requests = len(design.request_routes)
        for outcome in report.outcomes:
            assert outcome.total == total_requests
            assert 0.0 <= outcome.survival_rate <= 1.0

    def test_single_failure_design_point_degrades(self):
        """Dual failures must lose something: two cuts split the ring in
        two, physically disconnecting every pair straddling the halves."""
        report = analyze_dual_failures(design_ring_network(10))
        assert report.worst_survival < 1.0
        # But most traffic still survives on average.
        assert report.mean_survival > 0.5

    def test_adjacent_cuts_are_mildest(self):
        """Cutting two adjacent fibers isolates no pair except those
        terminating between them — survival is maximal among pairs."""
        design = design_ring_network(9)
        report = analyze_dual_failures(design)
        by_pair = {o.links: o for o in report.outcomes}
        adjacent = by_pair[(0, 1)]
        # Only requests involving node 1 (between the cuts) can be lost.
        assert adjacent.lost_disconnected <= design.n - 1
        opposite = by_pair[(0, design.n // 2)]
        assert opposite.lost_disconnected >= adjacent.lost_disconnected

    def test_disconnection_matches_cut_structure(self):
        """A request is lost-disconnected iff the two cuts separate its
        endpoints on the ring — cross-checked combinatorially."""
        n = 8
        design = design_ring_network(n)
        report = analyze_dual_failures(design)
        for outcome in report.outcomes:
            f1, f2 = outcome.links
            # Nodes strictly 'inside' the arc f1+1..f2 vs outside.
            inside = {v % n for v in range(f1 + 1, f2 + 1)}
            expected = sum(
                1
                for (a, b) in design.request_routes
                if (a in inside) != (b in inside)
            )
            assert outcome.lost_disconnected == expected

    def test_summary(self):
        report = analyze_dual_failures(design_ring_network(6))
        assert "dual failures" in report.summary()

    def test_tiny_ring_rejected(self):
        with pytest.raises(ReproError):
            analyze_dual_failures(design_ring_network(3))
