"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E10" in out

    def test_rho_range(self, capsys):
        assert main(["--rho", "4..8"]) == 0
        out = capsys.readouterr().out
        assert "ρ(n)" in out
        for n, r in [(4, 3), (5, 3), (6, 5), (7, 6), (8, 9)]:
            assert f"{n}" in out and f"{r}" in out

    def test_rho_commas(self, capsys):
        assert main(["--rho", "5,9"]) == 0
        out = capsys.readouterr().out
        assert "10" in out  # ρ(9)

    def test_single_experiment(self, capsys):
        assert main(["E3"]) == 0
        out = capsys.readouterr().out
        assert "paper example" in out
        assert "(1, 3, 4, 2)" in out

    def test_unknown_experiment(self, capsys):
        assert main(["E99"]) == 2
        err = capsys.readouterr().err
        assert "unknown" in err

    def test_multiple_experiments(self, capsys):
        assert main(["E1", "E10"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 1" in out
        assert "exact solver" in out


@pytest.mark.slow
class TestCliFull:
    def test_default_runs_everything(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        for key in ("E1", "E2", "E3", "E4", "E5", "E6", "E8", "E9", "E10"):
            assert f"# {key}" in out
