"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E10" in out

    def test_rho_range(self, capsys):
        assert main(["--rho", "4..8"]) == 0
        out = capsys.readouterr().out
        assert "ρ(n)" in out
        for n, r in [(4, 3), (5, 3), (6, 5), (7, 6), (8, 9)]:
            assert f"{n}" in out and f"{r}" in out

    def test_rho_commas(self, capsys):
        assert main(["--rho", "5,9"]) == 0
        out = capsys.readouterr().out
        assert "10" in out  # ρ(9)

    def test_single_experiment(self, capsys):
        assert main(["E3"]) == 0
        out = capsys.readouterr().out
        assert "paper example" in out
        assert "(1, 3, 4, 2)" in out

    def test_unknown_experiment(self, capsys):
        assert main(["E99"]) == 2
        err = capsys.readouterr().err
        assert "unknown" in err

    def test_multiple_experiments(self, capsys):
        assert main(["E1", "E10"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 1" in out
        assert "exact solver" in out


@pytest.mark.slow
class TestCliFull:
    def test_default_runs_everything(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        for key in ("E1", "E2", "E3", "E4", "E5", "E6", "E8", "E9", "E10"):
            assert f"# {key}" in out


class TestApiSubcommands:
    def test_solve_table(self, capsys):
        assert main(["solve", "--n", "7", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "closed_form" in out
        assert "blocks:" in out  # single-job spelling prints the covering

    def test_solve_json_is_one_envelope(self, capsys):
        import json

        assert main(["solve", "--n", "6", "--backend", "exact", "--no-cache",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert isinstance(doc, dict)
        assert doc["status"] == "proven_optimal"
        assert len(doc["covering"]["blocks"]) == 5  # ρ(6)

    def test_sweep_json_is_always_an_array(self, capsys):
        import json

        assert main(["sweep", "--ns", "5..5", "--no-cache", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert isinstance(doc, list) and len(doc) == 1

    def test_sweep_table_rows(self, capsys):
        assert main(["sweep", "--ns", "5..7", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert out.count("closed_form") >= 3
        assert "blocks:" not in out

    def test_sweep_uses_cache_on_rerun(self, capsys, tmp_path, monkeypatch):
        cache = str(tmp_path / "cache")
        assert main(["sweep", "--ns", "5..6", "--cache", cache, "--json"]) == 0
        first = capsys.readouterr().out
        assert main(["sweep", "--ns", "5..6", "--cache", cache, "--json"]) == 0
        captured = capsys.readouterr()
        assert captured.out == first  # byte-identical envelopes
        assert "[cache] hit" in captured.err

    def test_invalid_spec_prints_friendly_error(self, capsys):
        assert main(["solve", "--n", "2", "--no-cache"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")

    def test_unroutable_spec_prints_friendly_error(self, capsys):
        # n = 18 clears every certifying ceiling, SAT tier included.
        assert main(["solve", "--n", "18", "--lam", "2", "--no-cache"]) == 1
        err = capsys.readouterr().err
        assert "error:" in err and "require_optimal" in err

    def test_rho_subcommand(self, capsys):
        assert main(["rho", "4..6"]) == 0
        assert "ρ(n)" in capsys.readouterr().out

    def test_experiments_list_subcommand(self, capsys):
        assert main(["experiments", "--list"]) == 0
        assert "E10" in capsys.readouterr().out


class TestObjectiveCli:
    def test_objectives_listing(self, capsys):
        assert main(["objectives"]) == 0
        out = capsys.readouterr().out
        assert "min_blocks" in out and "min_total_size" in out
        assert "slot_counting+end_parity" in out
        assert "closed_form" in out and "heuristic" in out

    def test_solve_min_total_size_json(self, capsys):
        assert main([
            "solve", "--n", "7", "--objective", "min_total_size",
            "--no-cache", "--json",
        ]) == 0
        import json as _json

        payload = _json.loads(capsys.readouterr().out)
        assert payload["version"] == "1.1"
        assert payload["spec"]["objective"] == "min_total_size"
        assert payload["objective_value"] == 21
        assert payload["lower_bound"] == 21

    def test_solve_allowed_sizes_table(self, capsys):
        assert main([
            "solve", "--n", "6", "--allowed-sizes", "3", "--no-cache",
        ]) == 0
        out = capsys.readouterr().out
        assert "proven_optimal" in out
        assert "value" in out  # the objective-axis column appears

    def test_bad_allowed_sizes_is_friendly(self, capsys):
        with pytest.raises(SystemExit):
            main(["solve", "--n", "6", "--allowed-sizes", "three"])
        err = capsys.readouterr().err
        assert "comma-separated integers" in err

    def test_min_blocks_table_shape_unchanged(self, capsys):
        assert main(["solve", "--n", "7", "--no-cache"]) == 0
        header = [
            line for line in capsys.readouterr().out.splitlines() if "backend" in line
        ][0]
        assert "value" not in header
