"""Last-line cross-layer invariants (hypothesis).

Small, sharp properties that tie layers together: protection arcs are
exact complements, costs are monotone in blocks, wavelength plans agree
with coverings, statistics agree with first-principles recounts.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.statistics import covering_statistics
from repro.core.construction import optimal_covering
from repro.survivability.failures import LinkFailure
from repro.survivability.protection import ProtectionSimulator
from repro.util import circular
from repro.wdm.adm import CostModel, evaluate_cost
from repro.wdm.design import design_ring_network

design_n = st.sampled_from([6, 7, 8, 9, 10, 11, 12, 13])


@given(design_n, st.data())
@settings(max_examples=20, deadline=None)
def test_protection_arcs_are_exact_complements(n, data):
    design = design_ring_network(n)
    link = data.draw(st.integers(0, n - 1))
    outcome = ProtectionSimulator(design).simulate_link_failure(LinkFailure(n, link))
    assert outcome.fully_recovered
    for ev in outcome.reroutes:
        w, p = ev.working_arc, ev.protection_arc
        assert w.length + p.length == n
        assert not (w.link_set & p.link_set)
        assert w.link_set | p.link_set == set(range(n))


@given(design_n)
@settings(max_examples=12, deadline=None)
def test_cost_strictly_monotone_in_blocks(n):
    cov = optimal_covering(n)
    grown = cov.with_blocks([cov.blocks[0]])
    for model in (CostModel(), CostModel(adm_port=1, transit_port=0,
                                          wavelength=0, amplification_per_link=0)):
        assert evaluate_cost(grown, model).total > evaluate_cost(cov, model).total


@given(design_n)
@settings(max_examples=12, deadline=None)
def test_statistics_agree_with_first_principles(n):
    cov = optimal_covering(n)
    stats = covering_statistics(cov)
    # Total covered slots from the distance spectrum equals Σ block sizes.
    assert sum(stats.distance_class_coverage.values()) == cov.total_slots
    # Required chords per class sum to |E(K_n)|.
    assert sum(stats.distance_class_required.values()) == circular.n_chords(n)
    # Excess recount matches the covering's own accounting.
    assert sum(stats.excess_by_distance.values()) == cov.excess()
    # Vertex loads sum to Σ block sizes as well (each member counted once).
    total_load = round(stats.vertex_load_mean * n)
    assert total_load == cov.total_slots


@given(design_n)
@settings(max_examples=10, deadline=None)
def test_wavelength_plan_consistent_with_covering(n):
    design = design_ring_network(n)
    plan = design.plan
    assert plan.num_wavelengths == 2 * design.covering.num_blocks
    assert len(plan.routings) == design.covering.num_blocks
    for blk, routing in zip(design.covering.blocks, plan.routings):
        assert sorted(routing.requests) == sorted(blk.edges())
