"""Tests for the WDM layer: wavelength plans, cost model, ring designs."""

from __future__ import annotations

import pytest

from repro.core.blocks import CycleBlock
from repro.core.covering import Covering
from repro.core.formulas import rho
from repro.util.errors import RoutingError
from repro.wdm.adm import DEFAULT_COST_MODEL, CostModel, evaluate_cost
from repro.wdm.design import design_ring_network
from repro.wdm.wavelengths import WavelengthPlan, assign_wavelengths


class TestWavelengthPlan:
    def test_counts(self, covering9):
        plan = assign_wavelengths(covering9)
        assert plan.num_subnetworks == covering9.num_blocks
        assert plan.num_wavelengths == 2 * covering9.num_blocks
        assert plan.working_wavelength(3) == 6
        assert plan.protection_wavelength(3) == 7

    def test_index_bounds(self, covering9):
        plan = assign_wavelengths(covering9)
        with pytest.raises(IndexError):
            plan.working_wavelength(covering9.num_blocks)

    def test_routings_tile_ring(self, covering9):
        plan = assign_wavelengths(covering9)
        for routing in plan.routings:
            assert routing.uses_all_links()

    def test_full_utilisation_is_paper_design_point(self, covering9, covering10):
        for cov in (covering9, covering10):
            assert assign_wavelengths(cov).fiber_utilisation == 1.0

    def test_wavelengths_through_node(self, covering9):
        plan = assign_wavelengths(covering9)
        assert plan.wavelengths_through_node(0) == covering9.num_blocks
        with pytest.raises(ValueError):
            plan.wavelengths_through_node(99)

    def test_rejects_non_drc(self):
        bad = Covering(4, (CycleBlock((0, 2, 3, 1)),))
        with pytest.raises(RoutingError):
            assign_wavelengths(bad)


class TestCostModel:
    def test_breakdown_arithmetic(self, covering9):
        cost = evaluate_cost(covering9)
        n, b = 9, covering9.num_blocks
        assert cost.adm_ports == covering9.total_slots
        assert cost.transit_ports == n * b - covering9.total_slots
        assert cost.wavelengths == 2 * b
        assert cost.lit_links == 2 * n * b
        assert cost.total == pytest.approx(
            cost.adm_cost + cost.transit_cost + cost.wavelength_cost + cost.amplification_cost
        )

    def test_fewer_cycles_cheaper(self):
        """The paper's claim: on a ring, cost minimisation ⇔ minimising
        the number of subnetworks (for any non-trivial price vector)."""
        from repro.core.construction import fast_covering, optimal_covering

        n = 12
        opt = evaluate_cost(optimal_covering(n))
        fast = evaluate_cost(fast_covering(n))
        assert optimal_covering(n).num_blocks < fast_covering(n).num_blocks
        assert opt.total < fast.total

    def test_custom_model(self, covering9):
        free = CostModel(adm_port=0, transit_port=0, wavelength=1, amplification_per_link=0)
        cost = evaluate_cost(covering9, free)
        assert cost.total == 2 * covering9.num_blocks

    def test_negative_coefficient_rejected(self):
        with pytest.raises(ValueError):
            CostModel(adm_port=-1)

    def test_default_model_ordering(self):
        assert DEFAULT_COST_MODEL.adm_port > DEFAULT_COST_MODEL.transit_port


class TestRingDesign:
    def test_end_to_end(self, design11):
        assert design11.n == 11
        assert design11.covering.num_blocks == rho(11)
        assert design11.plan.num_wavelengths == 2 * rho(11)
        assert "subnetworks" in design11.summary()

    def test_every_request_routed(self, design11):
        routes = design11.request_routes
        assert len(routes) == 55  # C(11,2)
        for (a, b), (k, arc) in routes.items():
            assert arc.request == (a, b)
            assert 0 <= k < design11.covering.num_blocks

    def test_route_of(self, design8):
        k, arc = design8.route_of(5, 1)
        assert arc.request == (1, 5)
        with pytest.raises(ValueError):
            design8.route_of(0, 0)  # degenerate request

    def test_even_design_covers_with_excess(self, design8):
        assert design8.covering.excess() == 4  # p = n/2

    def test_fast_mode(self):
        d = design_ring_network(10, optimal=False)
        assert d.covering.num_blocks >= rho(10)
        assert d.covering.covers()
