"""Tests for conflict-graph wavelength coloring on general topologies."""

from __future__ import annotations

import pytest

from repro.core.blocks import CycleBlock
from repro.extensions.topologies import (
    greedy_graph_covering,
    ring_network_graph,
    torus_network,
    tree_of_rings,
)
from repro.util.errors import RoutingError
from repro.wdm.coloring import color_wavelengths


class TestColoring:
    def test_ring_is_full_conflict(self):
        """On a ring every DRC routing tiles all fibers, so no sharing:
        wavelengths = subnetworks and the conflict graph is complete."""
        net = ring_network_graph(6)
        blocks = greedy_graph_covering(net)
        plan = color_wavelengths(net, blocks)
        assert plan.num_wavelengths == len(blocks)
        assert plan.conflict_density == pytest.approx(1.0)

    def test_torus_shares_wavelengths(self):
        """Mesh topologies leave fibers idle per routing, so coloring
        packs several subnetworks per wavelength."""
        net = torus_network(3, 3)
        blocks = greedy_graph_covering(net)
        plan = color_wavelengths(net, blocks)
        assert plan.num_wavelengths < len(blocks)
        assert plan.conflict_density < 1.0

    def test_assignment_is_proper(self):
        """No two conflicting blocks share a wavelength — recheck from
        the actual routings."""
        from repro.extensions.topologies import drc_route_on_graph

        net = tree_of_rings((4, 4))
        blocks = greedy_graph_covering(net)
        plan = color_wavelengths(net, blocks)

        def links_of(blk):
            routing = drc_route_on_graph(net, blk)
            return {
                tuple(sorted((u, v), key=repr))
                for path in routing.values()
                for u, v in zip(path, path[1:])
            }

        sets = [links_of(b) for b in blocks]
        for i in range(len(blocks)):
            for j in range(i + 1, len(blocks)):
                if sets[i] & sets[j]:
                    assert plan.wavelength_of(i) != plan.wavelength_of(j)

    def test_unroutable_block_rejected(self):
        net = ring_network_graph(4)
        with pytest.raises(RoutingError):
            color_wavelengths(net, [CycleBlock((0, 2, 3, 1))])

    def test_empty_block_list(self):
        plan = color_wavelengths(ring_network_graph(5), [])
        assert plan.num_wavelengths == 0

    def test_summary(self):
        net = ring_network_graph(5)
        plan = color_wavelengths(net, [CycleBlock((0, 1, 2))])
        assert "subnetworks" in plan.summary()
