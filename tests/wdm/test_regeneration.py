"""Tests for the optical reach / regeneration model."""

from __future__ import annotations

import pytest

from repro.rings.routing import Arc
from repro.wdm.design import design_ring_network
from repro.wdm.regeneration import plan_regeneration, regenerators_for_arc


class TestArcRegens:
    def test_within_reach_no_regens(self):
        assert regenerators_for_arc(Arc(10, 0, 3), reach=5) == []

    def test_exact_multiples(self):
        # 6-hop path, reach 2: regenerate after hops 2 and 4 (not at the
        # terminating endpoint).
        assert regenerators_for_arc(Arc(10, 0, 6), reach=2) == [2, 4]

    def test_reach_one_regenerates_everywhere(self):
        assert regenerators_for_arc(Arc(8, 5, 1), reach=1) == [6, 7, 0]

    def test_endpoint_never_a_site(self):
        sites = regenerators_for_arc(Arc(9, 0, 6), reach=3)
        assert 6 not in sites
        assert sites == [3]

    def test_reach_validated(self):
        with pytest.raises(ValueError):
            regenerators_for_arc(Arc(8, 0, 4), reach=0)


class TestPlan:
    def test_transparent_when_reach_covers_ring(self):
        design = design_ring_network(8)
        plan = plan_regeneration(design, reach=8)
        assert plan.transparent
        assert plan.total_cost == 0.0

    def test_protection_needs_more_regens(self):
        """Loop-back paths are longer than working paths on average, so
        protection carries at least as many regenerators."""
        design = design_ring_network(11)
        plan = plan_regeneration(design, reach=4)
        assert plan.num_protection_regens >= plan.num_working_regens
        assert plan.total_regens == plan.num_working_regens + plan.num_protection_regens

    def test_monotone_in_reach(self):
        design = design_ring_network(10)
        counts = [plan_regeneration(design, reach=r).total_regens for r in (2, 4, 8)]
        assert counts[0] >= counts[1] >= counts[2]

    def test_cost_scales_with_unit(self):
        design = design_ring_network(9)
        a = plan_regeneration(design, reach=3, regen_unit_cost=10.0)
        b = plan_regeneration(design, reach=3, regen_unit_cost=20.0)
        assert b.total_cost == pytest.approx(2 * a.total_cost)

    def test_busiest_sites(self):
        design = design_ring_network(12)
        plan = plan_regeneration(design, reach=3)
        top = plan.busiest_sites(top=2)
        assert len(top) <= 2
        if top:
            assert top[0][1] >= top[-1][1]

    def test_every_request_planned(self):
        design = design_ring_network(9)
        plan = plan_regeneration(design, reach=3)
        assert set(plan.working_regens) == set(design.request_routes)
        assert set(plan.protection_regens) == set(design.request_routes)

    def test_summary(self):
        design = design_ring_network(8)
        assert "regeneration" in plan_regeneration(design, reach=3).summary()

    def test_negative_cost_rejected(self):
        design = design_ring_network(8)
        with pytest.raises(ValueError):
            plan_regeneration(design, reach=3, regen_unit_cost=-1)
