"""Tests for the baseline coverings (greedy DRC, non-DRC, ring sizes)."""

from __future__ import annotations

import pytest

from repro.baselines.greedy import greedy_drc_covering, size_greedy_covering
from repro.baselines.nondrc import (
    greedy_cycle_cover,
    greedy_triangle_cover,
    triangle_cover_gap,
    triangle_covering_number,
)
from repro.core.bounds import total_size_lower_bound
from repro.core.construction import optimal_covering
from repro.traffic.instances import all_to_all
from repro.core.formulas import cycle_cover_lower_bound, rho
from repro.traffic.instances import from_requests, lambda_all_to_all
from repro.util import circular


class TestGreedyDrc:
    @pytest.mark.parametrize("n", (5, 6, 8, 9, 11))
    def test_valid_covering(self, n):
        cov = greedy_drc_covering(n)
        assert cov.covers()
        assert cov.is_drc_feasible()
        assert cov.num_blocks >= rho(n)

    def test_not_better_than_optimum(self):
        for n in (7, 10, 13):
            assert greedy_drc_covering(n).num_blocks >= optimal_covering(n).num_blocks

    def test_lambda_instance(self):
        inst = lambda_all_to_all(6, 2)
        cov = greedy_drc_covering(6, inst)
        assert cov.covers(inst)

    def test_sparse_instance(self):
        inst = from_requests(8, [(0, 4), (1, 5), (0, 1)])
        cov = greedy_drc_covering(8, inst)
        assert cov.covers(inst)

    def test_instance_mismatch(self):
        from repro.util.errors import ConstructionError

        with pytest.raises(ConstructionError):
            greedy_drc_covering(8, lambda_all_to_all(7, 1))


class TestNonDrc:
    @pytest.mark.parametrize("n", (5, 7, 9, 12))
    def test_triangle_cover_covers(self, n):
        blocks = greedy_triangle_cover(n)
        covered = {e for blk in blocks for e in blk.edges()}
        assert covered == set(circular.all_chords(n))
        assert all(blk.size == 3 for blk in blocks)

    def test_triangle_cover_at_least_formula(self):
        for n in (5, 7, 9, 11, 13):
            assert len(greedy_triangle_cover(n)) >= triangle_covering_number(n)
            assert triangle_cover_gap(n) >= 0

    @pytest.mark.parametrize("n", (5, 8, 10))
    def test_cycle_cover_covers(self, n):
        blocks = greedy_cycle_cover(n, 4)
        covered = {e for blk in blocks for e in blk.edges()}
        assert covered == set(circular.all_chords(n))
        assert len(blocks) >= cycle_cover_lower_bound(n, 4)

    def test_non_drc_beats_drc_count(self):
        """Without the DRC, fewer (or equal) cycles suffice — the paper's
        motivation for studying the constrained problem."""
        for n in (9, 11, 13):
            assert len(greedy_cycle_cover(n, 4)) <= rho(n) + n // 2


class TestRingSizes:
    def test_lower_bound_values(self):
        assert total_size_lower_bound(all_to_all(7)).value == 21
        assert total_size_lower_bound(all_to_all(8)).value == 28 + 4

    def test_theorem_coverings_attain_adm_optimum(self):
        """The ρ-optimal coverings are simultaneously ADM-optimal — the
        bridge to the [3]/[4] objective checked by experiment E4 (and
        now certified end-to-end by the min_total_size objective)."""
        for n in (7, 9, 6, 8, 10, 12):
            cov = optimal_covering(n)
            assert cov.total_slots == total_size_lower_bound(all_to_all(n)).value

    @pytest.mark.parametrize("n", (6, 7, 9))
    def test_size_greedy_valid(self, n):
        cov = size_greedy_covering(n)
        assert cov.covers()
        assert cov.is_drc_feasible()
        assert cov.total_slots >= total_size_lower_bound(all_to_all(n)).value
