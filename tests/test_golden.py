"""Golden regression tests: pin the exact constructions for small n.

The constructions are deterministic; these snapshots protect users who
persist coverings (via :mod:`repro.io`) from silent construction
changes, and force any intentional algorithm change to be visible in
review.  (Validity and optimality are tested elsewhere — this file is
purely about stability.)
"""

from __future__ import annotations

import pytest

from repro.core.construction import optimal_covering

GOLDEN = {
    5: [(0, 1, 2, 3), (0, 2, 4), (1, 3, 4)],
    6: [(0, 1, 2, 4), (0, 2, 5), (0, 3, 5), (1, 2, 3, 4), (1, 3, 4, 5)],
    7: [(0, 1, 3, 4), (0, 2, 3, 5), (0, 3, 6), (1, 2, 4, 5), (1, 4, 6), (2, 5, 6)],
    8: [
        (0, 1, 4, 5),
        (0, 2, 4, 6),
        (0, 3, 4),
        (0, 4, 7),
        (1, 2, 3, 6),
        (1, 3, 7),
        (1, 5, 7),
        (2, 3, 5, 6),
        (2, 5, 6, 7),
    ],
}


@pytest.mark.parametrize("n", sorted(GOLDEN))
def test_construction_snapshot(n):
    cov = optimal_covering(n)
    assert sorted(blk.canonical for blk in cov.blocks) == GOLDEN[n]


def test_constructions_are_deterministic():
    """Two fresh builds agree block-for-block (no hidden randomness)."""
    for n in (9, 10, 12):
        a = optimal_covering(n)
        b = optimal_covering(n)
        assert [blk.canonical for blk in a.blocks] == [blk.canonical for blk in b.blocks]
