"""Service-level behaviour: solve/solve_batch, statuses, envelopes.

These tests check the acceptance contract end to end: one call path
(``api.solve``) reproduces the certified ρ(n) values with the right
status per tier, every result validates against its spec's demand, and
the ``Result`` envelope round-trips through deterministic JSON.
"""

from __future__ import annotations

import pytest

from repro.api import (
    Backend,
    CoverSpec,
    Result,
    SpecError,
    available_backends,
    get_backend,
    solve,
    solve_batch,
)
from repro.core.formulas import rho
from repro.core.verify import verify_covering


class TestTiers:
    def test_closed_form_tier(self):
        result = solve(CoverSpec.for_ring(11))
        assert result.status == "closed_form"
        assert result.backend == "closed_form"
        assert result.num_blocks == rho(11) == result.lower_bound
        assert result.proven_optimal
        assert result.stats.nodes == 0
        assert "theorem1_odd" in result.certificates

    def test_exact_tier_certifies_rho(self):
        result = solve(CoverSpec.for_ring(7, backend="exact", use_hints=False))
        assert result.status == "proven_optimal"
        assert result.num_blocks == rho(7)
        assert result.stats.proven_optimal
        assert "branch_and_bound_exhaustive" in result.certificates

    def test_heuristic_tier_is_feasible_only(self):
        result = solve(CoverSpec.for_ring(14, require_optimal=False))
        assert result.status == "feasible"
        assert not result.proven_optimal
        assert result.lower_bound <= result.num_blocks
        assert verify_covering(result.covering).valid

    def test_every_result_covers_its_demand(self):
        for spec in (
            CoverSpec.for_ring(8),
            CoverSpec.for_ring(6, backend="exact"),
            CoverSpec(n=7, demand=((0, 2, 2), (1, 4, 1))),
        ):
            result = solve(spec)
            assert result.covering.covers(spec.instance())

    def test_exact_matches_closed_form_value(self):
        for n in (6, 7, 8):
            exact = solve(CoverSpec.for_ring(n, backend="exact", use_hints=False))
            closed = solve(CoverSpec.for_ring(n))
            assert exact.num_blocks == closed.num_blocks == rho(n)


class TestBatch:
    def test_order_matches_specs_and_cache_is_shared(self, tmp_path):
        specs = [CoverSpec.for_ring(n) for n in (5, 6, 7)]
        results = solve_batch(specs, cache=tmp_path / "c")
        assert [r.spec.n for r in results] == [5, 6, 7]
        again = solve_batch(specs, cache=tmp_path / "c")
        assert all(r.from_cache for r in again)
        assert [a.to_json() for a in again] == [r.to_json() for r in results]


class TestEnvelope:
    def test_json_round_trip(self):
        result = solve(CoverSpec.for_ring(6, backend="exact", use_hints=False))
        again = Result.from_json(result.to_json(), verify=True)
        assert again == result
        assert again.to_json() == result.to_json()

    def test_repeated_solves_are_byte_identical(self):
        spec = CoverSpec.for_ring(8, backend="exact", use_hints=False)
        assert solve(spec).to_json() == solve(spec).to_json()

    def test_unknown_status_rejected(self):
        result = solve(CoverSpec.for_ring(5))
        with pytest.raises(SpecError, match="status"):
            Result(
                spec=result.spec,
                covering=result.covering,
                status="maybe",
                backend="exact",
                stats=result.stats,
            )

    def test_spec_hash_stamped_into_payload(self):
        result = solve(CoverSpec.for_ring(5))
        payload = result.to_payload()
        assert payload["spec_hash"] == result.spec.spec_hash
        assert payload["provenance"]["library"] == "repro"


class TestRegistry:
    def test_stock_backends_registered(self):
        assert set(available_backends()) >= {
            "closed_form",
            "exact",
            "exact_sharded",
            "heuristic",
        }

    def test_backends_satisfy_the_protocol(self):
        for name in available_backends():
            assert isinstance(get_backend(name), Backend)

    def test_unknown_backend_raises(self):
        with pytest.raises(SpecError, match="unknown backend"):
            get_backend("quantum")


class TestProvenance:
    def test_provenance_round_trips_verbatim(self):
        # A cached envelope keeps the *producing* library's stamp, so
        # reruns stay byte-identical across upgrades.
        result = solve(CoverSpec.for_ring(5))
        payload = result.to_payload()
        payload["provenance"]["library_version"] = "0.0.1"
        import json

        again = Result.from_json(json.dumps(payload))
        assert again.to_payload()["provenance"]["library_version"] == "0.0.1"
        assert again == result  # provenance is metadata, not identity


class TestRoutingErrorHierarchy:
    def test_api_routing_error_is_a_util_routing_error(self):
        from repro.api import RoutingError as ApiRoutingError
        from repro.util.errors import ReproError, RoutingError

        assert issubclass(ApiRoutingError, RoutingError)
        assert issubclass(ApiRoutingError, ReproError)

    def test_catchable_via_the_library_wide_spelling(self):
        from repro.util.errors import RoutingError

        with pytest.raises(RoutingError):
            solve(CoverSpec.for_ring(18, lam=2))
