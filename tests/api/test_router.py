"""Router golden tests: the spec → backend mapping is pinned.

``route_backend`` is pure policy — these tests freeze the policy so a
refactor that silently reroutes (say) the λ-fold certifier from
``closed_form`` to ``exact`` shows up as a test diff, not as a perf or
status regression three layers up.
"""

from __future__ import annotations

import pytest

from repro.api import CoverSpec, RoutingError, SpecError, route, route_backend

GOLDEN = [
    # The paper's headline jobs: Theorem 1/2 certificates make them free.
    (dict(n=7), "closed_form"),
    (dict(n=8), "closed_form"),
    (dict(n=11), "closed_form"),
    # Odd-n λ-fold: λ-repetition meets the λ lower bound → still free.
    (dict(n=7, lam=2), "closed_form"),
    (dict(n=9, lam=3), "closed_form"),
    # Even-n λ-fold: repetition is not optimal, the exact tier decides.
    (dict(n=8, lam=2), "exact"),
    # A restricted pool disables the C3/C4 constructions.
    (dict(n=6, max_size=3), "exact"),
    (dict(n=10, max_size=5), "exact"),
    # The shard policy kicks in at the threshold (where exact_sharded applies).
    (dict(n=10, max_size=5, shard_threshold=10), "exact_sharded"),
    # No certificate requested → heuristic, regardless of size.
    (dict(n=30, require_optimal=False), "heuristic"),
    (dict(n=7, require_optimal=False), "heuristic"),
    # A pinned backend wins over routing.
    (dict(n=9, backend="exact"), "exact"),
    (dict(n=9, backend="exact_sharded"), "exact_sharded"),
    (dict(n=9, backend="heuristic", require_optimal=False), "heuristic"),
    (dict(n=9, backend="sat"), "sat"),
    # Beyond the B&B ceilings the SAT certification tier takes over.
    (dict(n=13, max_size=5), "sat"),
    (dict(n=14, lam=2), "sat"),
    (dict(n=12, lam=2), "sat"),
]


class TestGoldenRouting:
    @pytest.mark.parametrize("kwargs,expected", GOLDEN)
    def test_route_backend(self, kwargs, expected):
        assert route_backend(CoverSpec.for_ring(**kwargs)) == expected

    @pytest.mark.parametrize("kwargs,expected", GOLDEN)
    def test_route_returns_the_named_backend(self, kwargs, expected):
        assert route(CoverSpec.for_ring(**kwargs)).name == expected

    def test_explicit_non_uniform_demand_routes_exact(self):
        spec = CoverSpec(n=6, demand=((0, 2, 1), (1, 4, 2)))
        assert route_backend(spec) == "exact"


class TestRoutingErrors:
    def test_beyond_every_certifying_ceiling(self):
        # max_size ≠ 4 rules out closed form; n = 17 exceeds the exact
        # tiers AND the SAT tier (SAT_MAX_N = 16).
        with pytest.raises(RoutingError, match="require_optimal"):
            route_backend(CoverSpec.for_ring(17, max_size=5))

    def test_lambda_fold_beyond_every_ceiling(self):
        with pytest.raises(RoutingError):
            route_backend(CoverSpec.for_ring(18, lam=2))

    def test_pinned_backend_that_cannot_honour_the_spec(self):
        # exact_sharded shards All-to-All root orbits; λ > 1 is out.
        with pytest.raises(RoutingError, match="exact_sharded"):
            route_backend(CoverSpec.for_ring(6, lam=2, backend="exact_sharded"))

    def test_pinned_unknown_backend(self):
        with pytest.raises(SpecError, match="unknown backend"):
            route_backend(CoverSpec.for_ring(6, backend="quantum"))
