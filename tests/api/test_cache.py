"""Content-addressed result cache: hit, miss, corruption recovery.

The contract under test is the one the CLI and the experiment reruns
lean on: a second identical solve is served from disk with *byte
identical* envelope JSON, and a corrupt/tampered entry is quarantined
(deleted, reported as a miss) rather than propagated.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.api import CoverSpec, ResultCache, solve


@pytest.fixture()
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


SPEC = CoverSpec.for_ring(6, backend="exact", use_hints=False)


def _hammer_entry(args: tuple[str, int]) -> int:
    """Worker body for the concurrent-writer race test: repeatedly
    rewrite and reread ONE cache entry.  Returns how many reads came
    back non-None — every one of which must have parsed as a full,
    valid envelope (a torn write would raise inside ``get`` and be
    quarantined, shrinking this count instead of crashing)."""
    root, rounds = args
    store = ResultCache(root)
    result = solve(SPEC, cache=None)
    seen = 0
    for _ in range(rounds):
        store.put(result)
        hit = store.get(SPEC)
        if hit is not None:
            assert hit.to_json() == result.to_json()
            seen += 1
    return seen


class TestHitMiss:
    def test_cold_cache_misses_then_populates(self, cache):
        assert cache.get(SPEC) is None
        assert cache.misses == 1
        result = solve(SPEC, cache=cache)
        assert not result.from_cache
        assert cache.path_for(SPEC).is_file()
        assert len(cache) == 1

    def test_second_solve_is_served_from_cache(self, cache):
        first = solve(SPEC, cache=cache)
        second = solve(SPEC, cache=cache)
        assert second.from_cache and not first.from_cache
        assert second.to_json() == first.to_json()  # byte-identical envelope
        assert cache.hits == 1

    def test_from_cache_is_excluded_from_equality(self, cache):
        first = solve(SPEC, cache=cache)
        second = solve(SPEC, cache=cache)
        assert first == second

    def test_distinct_specs_use_distinct_entries(self, cache):
        other = CoverSpec.for_ring(7, backend="exact", use_hints=False)
        solve(SPEC, cache=cache)
        solve(other, cache=cache)
        assert len(cache) == 2
        assert cache.path_for(SPEC) != cache.path_for(other)

    def test_path_is_content_addressed(self, cache):
        path = cache.path_for(SPEC)
        assert path.name == f"{SPEC.spec_hash}.json"
        assert path.parent.name == SPEC.spec_hash[:2]


class TestCorruptionRecovery:
    def test_garbage_entry_is_quarantined_and_resolved(self, cache):
        solve(SPEC, cache=cache)
        path = cache.path_for(SPEC)
        path.write_text("{ not json", encoding="utf-8")
        assert cache.get(SPEC) is None
        assert not path.exists()  # quarantined
        assert cache.evictions == 1
        result = solve(SPEC, cache=cache)  # re-solves and re-populates
        assert not result.from_cache
        assert path.is_file()

    def test_tampered_spec_hash_is_quarantined(self, cache):
        solve(SPEC, cache=cache)
        path = cache.path_for(SPEC)
        doc = json.loads(path.read_text(encoding="utf-8"))
        doc["spec_hash"] = "0" * 64
        path.write_text(json.dumps(doc), encoding="utf-8")
        assert cache.get(SPEC) is None
        assert not path.exists()

    def test_tampered_covering_fails_verification(self, cache):
        verifying = ResultCache(cache.root, verify=True)
        solve(SPEC, cache=verifying)
        path = verifying.path_for(SPEC)
        doc = json.loads(path.read_text(encoding="utf-8"))
        doc["covering"]["blocks"] = doc["covering"]["blocks"][:1]
        path.write_text(json.dumps(doc), encoding="utf-8")
        assert verifying.get(SPEC) is None
        assert not path.exists()

    def test_foreign_schema_major_is_quarantined(self, cache):
        solve(SPEC, cache=cache)
        path = cache.path_for(SPEC)
        doc = json.loads(path.read_text(encoding="utf-8"))
        doc["version"] = "99.0"
        path.write_text(json.dumps(doc), encoding="utf-8")
        assert cache.get(SPEC) is None


class TestHandleCoercion:
    def test_open_none_is_disabled(self):
        assert ResultCache.open(None) is None

    def test_open_path_makes_a_cache(self, tmp_path):
        store = ResultCache.open(tmp_path / "c")
        assert isinstance(store, ResultCache)

    def test_open_cache_passes_through(self, cache):
        assert ResultCache.open(cache) is cache

    def test_solve_accepts_a_directory_path(self, tmp_path):
        solve(SPEC, cache=tmp_path / "c")
        again = solve(SPEC, cache=tmp_path / "c")
        assert again.from_cache


class TestMaintenance:
    def test_stats_and_clear(self, cache):
        solve(SPEC, cache=cache)
        solve(SPEC, cache=cache)
        stats = cache.stats()
        assert stats["entries"] == 1 and stats["hits"] == 1
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_stats_expose_hit_rate_and_coalesce_counter(self, cache):
        stats = cache.stats()
        assert stats["hit_rate"] == 0.0  # never consulted: not 0/0
        assert stats["coalesced"] == 0
        solve(SPEC, cache=cache)  # miss
        solve(SPEC, cache=cache)  # hit
        solve(SPEC, cache=cache)  # hit
        stats = cache.stats()
        assert stats["hit_rate"] == pytest.approx(2 / 3)
        # The coalesce counter is fed by the layers that dedupe by spec
        # hash (dispatcher batches, the serve tier) — the cache only
        # accounts for it.
        cache.note_coalesced()
        cache.note_coalesced(2)
        cache.note_coalesced(0)  # no-op
        assert cache.stats()["coalesced"] == 3

    def test_dispatch_batch_counts_duplicate_specs_as_coalesced(self, cache):
        from repro.dispatch import dispatch_batch

        report = dispatch_batch([SPEC, SPEC, SPEC], cache=cache)
        assert len(report.results) == 3
        assert cache.stats()["coalesced"] == 2


class TestCorruptStatsRecovery:
    def test_wrong_typed_stats_value_is_quarantined(self, cache):
        # "nodes": null reaches int(...) inside Result.from_payload and
        # raises TypeError — the cache must treat that as corruption,
        # not crash the solve.
        solve(SPEC, cache=cache)
        path = cache.path_for(SPEC)
        doc = json.loads(path.read_text(encoding="utf-8"))
        doc["stats"]["nodes"] = None
        path.write_text(json.dumps(doc), encoding="utf-8")
        assert cache.get(SPEC) is None
        assert not path.exists()
        assert not solve(SPEC, cache=cache).from_cache  # re-solved


class TestConcurrentWriters:
    def test_parallel_writers_never_interleave_partial_json(self, tmp_path):
        """Two (here: four) workers completing the same spec hash must
        not interleave partial JSON.  ``put`` writes a private temp file
        and atomically renames it over the entry, so every concurrent
        reader sees either a complete old envelope or a complete new one
        — this hammers one entry from four processes and requires every
        successful read to be byte-identical to the envelope written."""
        root = str(tmp_path / "cache")
        rounds = 25
        with ProcessPoolExecutor(max_workers=4) as pool:
            seen = list(pool.map(_hammer_entry, [(root, rounds)] * 4))
        # Atomic replace means no read can fail to parse: every get hits.
        assert seen == [rounds] * 4
        store = ResultCache(root)
        final = store.get(SPEC)
        assert final is not None
        assert final.to_json() == solve(SPEC, cache=None).to_json()
        # No abandoned temp files: every mkstemp was renamed or unlinked.
        assert list((tmp_path / "cache").rglob("*.tmp")) == []


class TestHitValidation:
    def test_non_covering_hit_is_evicted_and_resolved(self, cache):
        # Structurally valid envelope, but the covering no longer meets
        # the demand: the service must evict and re-solve, not serve it.
        solve(SPEC, cache=cache)
        path = cache.path_for(SPEC)
        doc = json.loads(path.read_text(encoding="utf-8"))
        doc["covering"]["blocks"] = doc["covering"]["blocks"][:1]
        path.write_text(json.dumps(doc), encoding="utf-8")
        result = solve(SPEC, cache=cache)
        assert not result.from_cache
        assert result.covering.covers(SPEC.instance())
        # the bad entry was replaced by the fresh solve
        again = solve(SPEC, cache=cache)
        assert again.from_cache and again.covering.covers(SPEC.instance())

    def test_evict_drops_the_entry(self, cache):
        solve(SPEC, cache=cache)
        assert len(cache) == 1
        cache.evict(SPEC)
        assert len(cache) == 0
