"""CoverSpec contract: validation, canonicalisation, hashing, JSON.

The spec is the API's wire format *and* the result cache's content
address, so the properties under test are load-bearing: equal specs
must hash identically (canonicalisation folds uniform explicit demand
into the ``(n, λ)`` spelling), the JSON round-trip must be lossless,
and malformed payloads must be rejected rather than half-parsed.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import CoverSpec, SpecError
from repro.core.engine import BRANCHING_ORDERS
from repro.traffic.instances import all_to_all, lambda_all_to_all
from repro.util import circular


# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------


@st.composite
def cover_specs(draw) -> CoverSpec:
    n = draw(st.integers(min_value=3, max_value=16))
    if draw(st.booleans()):
        demand, lam = None, draw(st.integers(min_value=1, max_value=3))
    else:
        lam = 1
        chords = draw(
            st.lists(
                st.tuples(
                    st.integers(0, n - 1),
                    st.integers(0, n - 1),
                    st.integers(1, 3),
                ).filter(lambda e: e[0] != e[1]),
                min_size=1,
                max_size=6,
            )
        )
        demand = tuple(chords)
    return CoverSpec(
        n=n,
        demand=demand,
        lam=lam,
        max_size=draw(st.integers(min_value=3, max_value=6)),
        pool=draw(st.sampled_from(("auto", "convex", "tight"))),
        require_optimal=draw(st.booleans()),
        use_hints=draw(st.booleans()),
        improve=draw(st.booleans()),
        node_limit=draw(st.none() | st.integers(min_value=1, max_value=10**6)),
        time_budget=draw(st.none() | st.floats(min_value=0.5, max_value=60.0)),
        workers=draw(st.none() | st.integers(min_value=1, max_value=4)),
        shard_threshold=draw(st.none() | st.integers(min_value=3, max_value=20)),
        backend=draw(st.none() | st.sampled_from(("exact", "heuristic"))),
        branching=draw(st.sampled_from(BRANCHING_ORDERS)),
        use_memo=draw(st.booleans()),
    )


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(spec=cover_specs())
    def test_json_round_trip_preserves_equality_and_hash(self, spec):
        again = CoverSpec.from_json(spec.to_json())
        assert again == spec
        assert again.spec_hash == spec.spec_hash

    @settings(max_examples=60, deadline=None)
    @given(spec=cover_specs())
    def test_payload_round_trip(self, spec):
        assert CoverSpec.from_payload(spec.to_payload()) == spec

    @settings(max_examples=30, deadline=None)
    @given(spec=cover_specs())
    def test_hash_is_deterministic_hex_sha256(self, spec):
        assert spec.spec_hash == spec.spec_hash
        assert len(spec.spec_hash) == 64
        int(spec.spec_hash, 16)  # valid hex


class TestCanonicalisation:
    def test_uniform_instance_folds_to_ring_spelling(self):
        explicit = CoverSpec.from_instance(lambda_all_to_all(7, 2))
        declared = CoverSpec.for_ring(7, lam=2)
        assert explicit == declared
        assert explicit.spec_hash == declared.spec_hash
        assert explicit.demand is None and explicit.lam == 2

    def test_all_to_all_instance_is_the_lam1_ring(self):
        assert CoverSpec.from_instance(all_to_all(6)) == CoverSpec.for_ring(6)

    def test_duplicate_demand_entries_merge(self):
        spec = CoverSpec(n=6, demand=((0, 2, 1), (2, 0, 2)))
        assert spec.demand == ((0, 2, 3),)

    def test_demand_entries_are_sorted_chords(self):
        spec = CoverSpec(n=7, demand=((4, 1, 1), (0, 3, 1)))
        assert spec.demand == tuple(sorted(spec.demand))
        for a, b, _ in spec.demand:
            assert (a, b) == circular.chord(a, b)

    def test_non_uniform_demand_stays_explicit(self):
        spec = CoverSpec(n=6, demand=((0, 2, 1),))
        assert not spec.is_all_to_all
        inst = spec.instance()
        assert inst.demand == {(0, 2): 1}


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n=2),
            dict(n="9"),
            dict(n=True),
            dict(n=6, lam=0),
            dict(n=6, max_size=2),
            dict(n=6, objective="max_profit"),
            dict(n=6, pool="everything"),
            dict(n=6, branching="random"),
            dict(n=6, node_limit=0),
            dict(n=6, time_budget=0.0),
            dict(n=6, workers=0),
            dict(n=6, shard_threshold=2),
            dict(n=6, lam=2, demand=((0, 2, 1),)),
            dict(n=6, demand=((0, 0, 1),)),
            dict(n=6, demand=((0, 9, 1),)),
            dict(n=6, demand=((0, 2, 0),)),
            dict(n=6, demand=()),
        ],
    )
    def test_malformed_specs_raise(self, kwargs):
        with pytest.raises(SpecError):
            CoverSpec(**kwargs)

    def test_unknown_payload_field_rejected(self):
        payload = CoverSpec.for_ring(6).to_payload()
        payload["frobnicate"] = True
        with pytest.raises(SpecError, match="frobnicate"):
            CoverSpec.from_payload(payload)

    def test_unknown_schema_major_rejected(self):
        payload = CoverSpec.for_ring(6).to_payload()
        payload["version"] = "99.0"
        with pytest.raises(SpecError, match="version"):
            CoverSpec.from_payload(payload)

    def test_wrong_format_tag_rejected(self):
        payload = CoverSpec.for_ring(6).to_payload()
        payload["format"] = "repro-covering"
        with pytest.raises(SpecError):
            CoverSpec.from_payload(payload)

    def test_not_json_rejected(self):
        with pytest.raises(SpecError, match="JSON"):
            CoverSpec.from_json("{nope")

    def test_newer_minor_of_same_major_accepted(self):
        payload = CoverSpec.for_ring(6).to_payload()
        major = payload["version"].split(".")[0]
        payload["version"] = f"{major}.7"
        assert CoverSpec.from_payload(payload) == CoverSpec.for_ring(6)


class TestHashSensitivity:
    def test_distinct_jobs_hash_differently(self):
        base = CoverSpec.for_ring(8)
        assert base.spec_hash != CoverSpec.for_ring(9).spec_hash
        assert base.spec_hash != CoverSpec.for_ring(8, lam=2).spec_hash
        assert base.spec_hash != CoverSpec.for_ring(8, use_hints=False).spec_hash
        assert base.spec_hash != CoverSpec.for_ring(8, backend="exact").spec_hash


class TestObjectiveAxis:
    """The objective/restriction axis of the spec: registry-backed
    validation, allowed_sizes canonicalisation, and — critically — the
    legacy hash/byte stability of unrestricted specs."""

    def test_unknown_objective_lists_registered(self):
        with pytest.raises(SpecError, match="min_blocks, min_total_size"):
            CoverSpec.for_ring(6, objective="max_profit")

    def test_registered_objectives_accepted(self):
        spec = CoverSpec.for_ring(6, objective="min_total_size")
        assert spec.objective == "min_total_size"

    def test_allowed_sizes_normalised(self):
        spec = CoverSpec.for_ring(7, allowed_sizes=(3, 3))
        assert spec.allowed_sizes == (3,)

    def test_full_range_canonicalises_to_none(self):
        spec = CoverSpec.for_ring(7, allowed_sizes=(4, 3))
        assert spec.allowed_sizes is None
        assert spec == CoverSpec.for_ring(7)
        assert spec.spec_hash == CoverSpec.for_ring(7).spec_hash

    @pytest.mark.parametrize(
        "sizes", [(), (2,), (5,), ("3",), (True,)],
    )
    def test_malformed_allowed_sizes_raise(self, sizes):
        with pytest.raises(SpecError):
            CoverSpec.for_ring(7, allowed_sizes=sizes)

    def test_max_size_widens_range(self):
        spec = CoverSpec.for_ring(9, max_size=5, allowed_sizes=(5,))
        assert spec.allowed_sizes == (5,)

    def test_unrestricted_payload_keeps_minor_zero(self):
        payload = CoverSpec.for_ring(7).to_payload()
        assert payload["version"] == "1.0"
        assert "allowed_sizes" not in payload

    def test_restricted_payload_minor_one_round_trips(self):
        spec = CoverSpec.for_ring(7, allowed_sizes=(3,))
        payload = spec.to_payload()
        assert payload["version"] == "1.1"
        assert payload["allowed_sizes"] == [3]
        assert CoverSpec.from_payload(json.loads(spec.to_json())) == spec

    def test_restriction_enters_the_hash(self):
        assert (
            CoverSpec.for_ring(7, allowed_sizes=(3,)).spec_hash
            != CoverSpec.for_ring(7).spec_hash
        )
        assert (
            CoverSpec.for_ring(7, objective="min_total_size").spec_hash
            != CoverSpec.for_ring(7).spec_hash
        )
