"""End-to-end integration tests: the full paper workflow, across layers."""

from __future__ import annotations

import pytest

from repro import (
    all_to_all,
    assert_valid_covering,
    lower_bound,
    optimal_covering,
    rho,
    theorem_cycle_mix,
)
from repro.core.pole import pole_decomposition
from repro.core.engine import solve_min_covering
from repro.survivability.failures import LinkFailure
from repro.survivability.protection import ProtectionSimulator
from repro.wdm.adm import evaluate_cost
from repro.wdm.design import design_ring_network


class TestPaperPipeline:
    """The complete story of the paper, as one executable narrative."""

    @pytest.mark.parametrize("n", (9, 14))
    def test_design_protect_and_cost(self, n):
        # 1. The operator designs a survivable WDM layer for an n-node ring.
        design = design_ring_network(n)

        # 2. The covering achieves the paper's optimum with the paper's mix.
        assert design.covering.num_blocks == rho(n)
        mix = theorem_cycle_mix(n)
        assert design.covering.num_triangles == mix[3]
        assert design.covering.num_quads == mix[4]

        # 3. The lower-bound certificate matches: optimality is *proven*,
        #    not assumed.
        assert lower_bound(n).value == design.covering.num_blocks

        # 4. Every request gets a working route inside its subnetwork.
        assert len(design.request_routes) == n * (n - 1) // 2

        # 5. Any single fiber cut is healed by in-cycle protection.
        sim = ProtectionSimulator(design)
        for link in range(n):
            outcome = sim.simulate_link_failure(LinkFailure(n, link))
            assert outcome.fully_recovered

        # 6. The cost model rates this design no worse than alternatives
        #    with more subnetworks (the paper's ring cost claim).
        richer = design.covering.with_blocks([design.covering.blocks[0]])
        assert evaluate_cost(design.covering).total < evaluate_cost(richer).total

    def test_three_way_agreement_small_n(self):
        """Formula == construction == exhaustive solver, for every n the
        solver can exhaust — the strongest optimality statement the
        reproduction makes."""
        for n in range(4, 8):
            formula = rho(n)
            constructed = optimal_covering(n).num_blocks
            solved = solve_min_covering(n, upper_bound=formula + 1).num_blocks
            assert formula == constructed == solved

    def test_odd_even_interplay(self):
        """The even covering of K_{n} is derived from the pole
        decomposition of K_{n+1}; deleting the pole must preserve
        validity and drop exactly p − (q+1) blocks."""
        n = 14  # 4q+2 with q = 3
        q = 3
        odd = pole_decomposition(n + 1)
        even = optimal_covering(n)
        assert odd.num_blocks - even.num_blocks == (2 * q + 1) - (q + 1)
        assert_valid_covering(even, all_to_all(n), expect_optimal=True)

    def test_instance_api_flow(self):
        inst = all_to_all(10)
        cov = optimal_covering(10)
        assert cov.covers(inst)
        assert cov.excess(inst) == 5
        report = assert_valid_covering(cov, inst, expect_optimal=True)
        assert report.optimal


class TestDocumentedClaims:
    """Quantitative sentences from the paper, as assertions."""

    def test_minimum_number_of_3cycles_formula(self):
        # "the minimum number of 3-cycles required to cover the edges of
        #  K_n is ⌈n/3⌈(n−1)/2⌉⌉"
        from repro.core.formulas import triangle_covering_number

        assert triangle_covering_number(6) == 6
        assert triangle_covering_number(12) == 24

    def test_theorem1_statement(self):
        # "When n = 2p+1, ρ(n) = p(p+1)/2 ... p C3 and p(p−1)/2 C4."
        for p in (2, 3, 4, 5, 6):
            n = 2 * p + 1
            cov = optimal_covering(n)
            assert cov.num_blocks == p * (p + 1) // 2
            assert cov.num_triangles == p
            assert cov.num_quads == p * (p - 1) // 2

    def test_theorem2_statement(self):
        # "When n = 2p, p ≥ 3, ρ(n) = ⌈(p²+1)/2⌉; n = 4q: 4 C3 and
        #  2q²−3 C4; n = 4q+2: 2 C3 and 2q²+2q−1 C4."
        for p in (3, 4, 5, 6, 7, 8):
            n = 2 * p
            cov = optimal_covering(n)
            assert cov.num_blocks == (p * p + 1 + 1) // 2
            if n % 4 == 0:
                q = n // 4
                assert cov.num_triangles == 4
                assert cov.num_quads == 2 * q * q - 3
            else:
                q = (n - 2) // 4
                assert cov.num_triangles == 2
                assert cov.num_quads == 2 * q * q + 2 * q - 1

    def test_half_capacity_design(self):
        # "on the cycle we use half of the capacity for the demands" —
        # working wavelength fully used, equal protection reserved.
        design = design_ring_network(9)
        assert design.plan.fiber_utilisation == 1.0
        assert design.plan.num_wavelengths == 2 * design.plan.num_working_wavelengths
