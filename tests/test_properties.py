"""Cross-module property-based tests (hypothesis).

These are the library's deepest invariants: the things that must hold
for *every* n, every block, every covering — not just the sampled
values the unit tests pin down.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocks import CycleBlock, convex_block
from repro.core.construction import fast_covering, optimal_covering
from repro.core.covering import Covering
from repro.core.drc import route_block
from repro.core.formulas import optimal_excess, rho, theorem_cycle_mix
from repro.core.ladder import ladder_decomposition
from repro.core.verify import verify_covering
from repro.survivability.metrics import evaluate_survivability
from repro.util import circular
from repro.wdm.design import design_ring_network

# Odd sizes stay cheap; even sizes ≡ 2 (mod 4) run the completion search
# once per size (cached), so the strategy draws from a fixed small pool.
odd_n = st.integers(1, 15).map(lambda p: 2 * p + 1)
even_n = st.sampled_from([4, 6, 8, 10, 12, 14, 16, 18, 20, 22])
any_n = st.one_of(odd_n, even_n)


@given(odd_n)
@settings(max_examples=15, deadline=None)
def test_odd_construction_is_exact_optimal_decomposition(n):
    cov = ladder_decomposition(n)
    report = verify_covering(cov, expect_optimal=True, expect_exact=True)
    assert report.valid and report.optimal
    assert cov.num_blocks == rho(n)
    # Each request covered exactly once.
    assert all(c == 1 for c in cov.coverage.values())
    assert len(cov.coverage) == circular.n_chords(n)


@given(even_n)
@settings(max_examples=10, deadline=None)
def test_even_construction_matches_theorem2(n):
    cov = optimal_covering(n)
    assert cov.num_blocks == rho(n)
    assert cov.excess() == optimal_excess(n)
    mix = theorem_cycle_mix(n)
    assert cov.num_triangles == mix[3]
    assert cov.num_quads == mix[4]


@given(any_n)
@settings(max_examples=20, deadline=None)
def test_every_construction_survives_verification(n):
    for builder in (optimal_covering, fast_covering):
        report = verify_covering(builder(n))
        assert report.valid, report.problems


@given(any_n)
@settings(max_examples=12, deadline=None)
def test_block_routings_partition_ring_links(n):
    cov = optimal_covering(n)
    for blk in cov.blocks:
        routing = route_block(n, blk)
        links = sorted(link for arc in routing.arcs for link in arc.links())
        assert links == list(range(n))


@given(st.integers(4, 30), st.data())
@settings(max_examples=200, deadline=None)
def test_convex_block_equals_sorted_cycle(n, data):
    """A block is DRC-routable iff its canonical form equals the convex
    cycle on its vertex set (two independent formulations agree)."""
    k = data.draw(st.integers(3, min(n, 7)))
    verts = data.draw(
        st.lists(st.integers(0, n - 1), min_size=k, max_size=k, unique=True)
    )
    blk = CycleBlock(tuple(verts))
    expected = blk.canonical == convex_block(tuple(verts)).canonical
    assert blk.is_convex(n) == expected


@given(st.integers(4, 16), st.data())
@settings(max_examples=100, deadline=None)
def test_covering_excess_identity(n, data):
    """excess = total slots − distinct-covered... precisely:
    Σ_e max(0, cov_e − 1) for all-to-all = slots − |covered chords|."""
    num = data.draw(st.integers(1, 6))
    blocks = []
    for _ in range(num):
        k = data.draw(st.integers(3, min(n, 5)))
        verts = data.draw(
            st.lists(st.integers(0, n - 1), min_size=k, max_size=k, unique=True)
        )
        blocks.append(convex_block(tuple(verts)))
    cov = Covering(n, tuple(blocks))
    assert cov.excess() == cov.total_slots - len(cov.coverage)


@given(st.sampled_from([5, 6, 7, 8, 9, 10, 11, 12]))
@settings(max_examples=8, deadline=None)
def test_design_end_to_end_invariants(n):
    design = design_ring_network(n)
    # Every request routed; every route serves its request.
    assert len(design.request_routes) == circular.n_chords(n)
    for (a, b), (_, arc) in design.request_routes.items():
        assert arc.request == (a, b)
    # Full survivability under single fiber cuts.
    report = evaluate_survivability(design)
    assert report.fully_survivable


@given(st.integers(3, 60))
@settings(max_examples=60, deadline=None)
def test_rho_against_counting_identity(n):
    """ρ(n) always within 1 of the raw counting bound, exceeding it only
    for n ≡ 0 (mod 4) — the parity case."""
    from repro.core.formulas import counting_bound

    diff = rho(n) - counting_bound(n)
    if n % 2 == 1 or n % 4 == 2 or n == 4:
        assert diff == 0 or (n == 4 and diff == 1)
    else:
        assert diff == 1


@given(st.integers(3, 40), st.data())
@settings(max_examples=120, deadline=None)
def test_serialisation_roundtrip(n, data):
    num = data.draw(st.integers(1, 5))
    blocks = []
    for _ in range(num):
        k = data.draw(st.integers(3, min(n, 6)))
        verts = data.draw(
            st.lists(st.integers(0, n - 1), min_size=k, max_size=k, unique=True)
        )
        blocks.append(CycleBlock(tuple(verts)))
    cov = Covering(n, tuple(blocks))
    assert Covering.from_dict(cov.to_dict()).blocks == cov.blocks
