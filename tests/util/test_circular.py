"""Unit and property tests for the circular geometry kernel."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util import circular as C


# ---------------------------------------------------------------------------
# gap / distance
# ---------------------------------------------------------------------------


class TestGapAndDistance:
    def test_gap_basic(self):
        assert C.gap(10, 2, 5) == 3
        assert C.gap(10, 5, 2) == 7
        assert C.gap(10, 9, 0) == 1
        assert C.gap(10, 4, 4) == 0

    def test_ring_distance_symmetric_pairs(self):
        assert C.ring_distance(10, 2, 5) == 3
        assert C.ring_distance(10, 5, 2) == 3
        assert C.ring_distance(10, 0, 5) == 5
        assert C.ring_distance(7, 0, 4) == 3

    def test_distance_at_most_half(self):
        for n in (5, 6, 9, 12):
            for a in range(n):
                for b in range(n):
                    assert C.ring_distance(n, a, b) <= n // 2

    @given(st.integers(3, 60), st.integers(0, 200), st.integers(0, 200))
    def test_gap_antisymmetry(self, n, a, b):
        a, b = a % n, b % n
        if a != b:
            assert C.gap(n, a, b) + C.gap(n, b, a) == n

    @given(st.integers(3, 60), st.integers(0, 200), st.integers(0, 200))
    def test_distance_symmetry(self, n, a, b):
        a, b = a % n, b % n
        assert C.ring_distance(n, a, b) == C.ring_distance(n, b, a)


class TestChords:
    def test_chord_normalises(self):
        assert C.chord(5, 2) == (2, 5)
        assert C.chord(2, 5) == (2, 5)

    def test_chord_rejects_loop(self):
        with pytest.raises(ValueError):
            C.chord(3, 3)

    def test_all_chords_count(self):
        for n in (3, 4, 7, 10):
            chords = list(C.all_chords(n))
            assert len(chords) == C.n_chords(n) == n * (n - 1) // 2
            assert len(set(chords)) == len(chords)
            assert all(a < b for a, b in chords)

    def test_total_chord_distance_matches_bruteforce(self):
        for n in range(3, 30):
            brute = sum(C.chord_distance(n, e) for e in C.all_chords(n))
            assert C.total_chord_distance(n) == brute

    def test_chord_distances_bulk_matches_scalar(self):
        n = 17
        chords = np.array(list(C.all_chords(n)))
        bulk = C.chord_distances_bulk(n, chords)
        scalar = [C.chord_distance(n, tuple(e)) for e in chords]
        assert bulk.tolist() == scalar

    def test_chord_distances_bulk_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            C.chord_distances_bulk(7, np.zeros((3, 3), dtype=int))


# ---------------------------------------------------------------------------
# circular order / winding
# ---------------------------------------------------------------------------


class TestCircularOrder:
    def test_sorted_is_circular(self):
        assert C.is_circular_order(8, [0, 2, 5, 7])

    def test_rotation_is_circular(self):
        assert C.is_circular_order(8, [5, 7, 0, 2])

    def test_reversal_is_circular(self):
        assert C.is_circular_order(8, [7, 5, 2, 0])
        assert C.is_circular_order(8, [2, 0, 7, 5])

    def test_paper_bad_cycle_is_not_circular(self):
        # The paper's (1,3,4,2) on C4 → 0-based (0,2,3,1).
        assert not C.is_circular_order(4, [0, 2, 3, 1])

    def test_interleaved_not_circular(self):
        assert not C.is_circular_order(6, [0, 3, 1, 4])

    def test_short_or_repeated_rejected(self):
        assert not C.is_circular_order(6, [0, 1])
        assert not C.is_circular_order(6, [0, 1, 1])

    def test_winding_number(self):
        assert C.winding_number(4, [0, 1, 2, 3]) == 1
        assert C.winding_number(4, [0, 2, 3, 1]) == 2

    @given(st.integers(4, 20), st.data())
    @settings(max_examples=200)
    def test_circular_iff_winding_one_either_direction(self, n, data):
        k = data.draw(st.integers(3, min(n, 7)))
        verts = data.draw(
            st.lists(st.integers(0, n - 1), min_size=k, max_size=k, unique=True)
        )
        expected = C.winding_number(n, verts) == 1 or C.winding_number(
            n, list(reversed(verts))
        ) == 1
        assert C.is_circular_order(n, verts) == expected

    @given(st.integers(4, 25), st.data())
    @settings(max_examples=200)
    def test_sorted_subsets_always_circular(self, n, data):
        verts = data.draw(
            st.lists(st.integers(0, n - 1), min_size=3, max_size=min(n, 8), unique=True)
        )
        assert C.is_circular_order(n, sorted(verts))


class TestSortAndConvex:
    def test_sort_circular_default(self):
        assert C.sort_circular(9, [7, 2, 5]) == [2, 5, 7]

    def test_sort_circular_with_start(self):
        assert C.sort_circular(9, [7, 2, 5], start=5) == [5, 7, 2]

    def test_sort_circular_bad_start(self):
        with pytest.raises(ValueError):
            C.sort_circular(9, [7, 2, 5], start=3)

    def test_convex_cycle(self):
        assert C.convex_cycle([5, 1, 3]) == (1, 3, 5)

    def test_convex_cycle_too_small(self):
        with pytest.raises(ValueError):
            C.convex_cycle([1, 2])


# ---------------------------------------------------------------------------
# crossing / nesting predicates
# ---------------------------------------------------------------------------


class TestCrossing:
    def test_crossing_pair(self):
        assert C.chords_cross(6, (0, 3), (1, 4))

    def test_nested_pair(self):
        assert not C.chords_cross(8, (0, 5), (1, 4))
        assert C.chords_nested(8, (0, 5), (1, 4))

    def test_disjoint_pair(self):
        assert not C.chords_cross(8, (0, 1), (3, 4))
        assert C.chords_compatible(8, (0, 1), (3, 4))

    def test_shared_endpoint_not_crossing(self):
        assert not C.chords_cross(8, (0, 3), (3, 6))
        assert not C.chords_compatible(8, (0, 3), (3, 6))

    @given(st.integers(5, 30), st.data())
    @settings(max_examples=200)
    def test_crossing_symmetry(self, n, data):
        verts = data.draw(
            st.lists(st.integers(0, n - 1), min_size=4, max_size=4, unique=True)
        )
        a, b, c, d = verts
        e, f = (min(a, b), max(a, b)), (min(c, d), max(c, d))
        assert C.chords_cross(n, e, f) == C.chords_cross(n, f, e)

    @given(st.integers(5, 30), st.data())
    @settings(max_examples=200)
    def test_cross_nested_disjoint_trichotomy(self, n, data):
        verts = data.draw(
            st.lists(st.integers(0, n - 1), min_size=4, max_size=4, unique=True)
        )
        a, b, c, d = verts
        e, f = (min(a, b), max(a, b)), (min(c, d), max(c, d))
        cross = C.chords_cross(n, e, f)
        nested = C.chords_nested(n, e, f)
        # Endpoint-disjoint chords are exactly one of crossing / non-crossing,
        # and nesting implies non-crossing.
        if nested:
            assert not cross

    @given(st.integers(5, 20), st.data())
    @settings(max_examples=150)
    def test_compatible_chords_share_convex_quad(self, n, data):
        """Non-crossing endpoint-disjoint chords are both edges of the
        convex quadrilateral on their endpoints (the merge lemma used
        by the even construction)."""
        verts = data.draw(
            st.lists(st.integers(0, n - 1), min_size=4, max_size=4, unique=True)
        )
        a, b, c, d = verts
        e, f = (min(a, b), max(a, b)), (min(c, d), max(c, d))
        quad_edges = set()
        vs = sorted(verts)
        for i in range(4):
            u, v = vs[i], vs[(i + 1) % 4]
            quad_edges.add((min(u, v), max(u, v)))
        both_in = e in quad_edges and f in quad_edges
        assert both_in == C.chords_compatible(n, e, f)


class TestArcs:
    def test_arc_between(self):
        assert C.arc_between(8, 6, 1) == [7, 0]
        assert C.arc_between(8, 2, 3) == []

    def test_vertices_in_arc(self):
        assert C.vertices_in_arc(10, 7, 2, [8, 9, 1, 4]) == [8, 9, 1]

    def test_canonical_rotation_invariance(self):
        base = (1, 4, 6, 2)
        variants = [(4, 6, 2, 1), (2, 6, 4, 1), (6, 2, 1, 4)]
        for var in variants:
            assert C.canonical_rotation(var) == C.canonical_rotation(base)

    def test_canonical_rotation_distinguishes(self):
        assert C.canonical_rotation((0, 1, 2, 3)) != C.canonical_rotation((0, 2, 1, 3))

    def test_cycle_gap_matrix(self):
        gaps = C.cycle_gap_matrix(7, [(0, 2, 5)])
        assert gaps[0].tolist() == [2, 3, 2]
