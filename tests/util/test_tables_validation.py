"""Tests for the table renderer, validators, RNG and parallel helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.util import parallel, rng, validation
from repro.util.errors import ReproError, SolverError
from repro.util.tables import Table, format_table


class TestTable:
    def test_render_alignment_and_title(self):
        t = Table("Demo", ["name", "value"])
        t.add_row("alpha", 12)
        t.add_row("beta", 345)
        text = t.render()
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert set(lines[1]) == {"="}
        assert "alpha" in text and "345" in text

    def test_row_arity_checked(self):
        t = Table("Demo", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_float_and_bool_formatting(self):
        text = format_table("T", ["x"], [[1.23456], [True]])
        assert "1.235" in text
        assert "yes" in text

    def test_str_is_render(self):
        t = Table("X", ["c"])
        t.add_row(1)
        assert str(t) == t.render()


class TestValidation:
    def test_require_raises_chosen_type(self):
        with pytest.raises(SolverError):
            validation.require(False, SolverError, "bad %s", "thing")
        validation.require(True, SolverError, "never")

    def test_check_vertex(self):
        assert validation.check_vertex(3, 5) == 3
        with pytest.raises(ValueError):
            validation.check_vertex(5, 5)
        with pytest.raises(ValueError):
            validation.check_vertex(-1, 5)

    def test_check_parities(self):
        assert validation.check_odd(7) == 7
        assert validation.check_even(8) == 8
        with pytest.raises(ValueError):
            validation.check_odd(4)
        with pytest.raises(ValueError):
            validation.check_even(9)

    def test_check_positive(self):
        assert validation.check_positive(2) == 2
        with pytest.raises(ValueError):
            validation.check_positive(0)

    def test_as_int_accepts_numpy(self):
        assert validation.as_int(np.int64(9)) == 9

    def test_as_int_rejects_bool_and_float(self):
        with pytest.raises(TypeError):
            validation.as_int(True)
        with pytest.raises(TypeError):
            validation.as_int(3.0)

    def test_all_distinct(self):
        assert validation.all_distinct([1, 2, 3])
        assert not validation.all_distinct([1, 2, 1])


class TestRng:
    def test_default_deterministic(self):
        a = rng.as_generator().integers(0, 1 << 30, 5)
        b = rng.as_generator().integers(0, 1 << 30, 5)
        assert a.tolist() == b.tolist()

    def test_int_seed(self):
        a = rng.as_generator(7).random()
        b = rng.as_generator(7).random()
        assert a == b

    def test_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert rng.as_generator(g) is g


def _square(x: int) -> int:
    return x * x


class TestParallel:
    def test_serial_small_payload(self):
        assert parallel.parallel_map(_square, [1, 2, 3], workers=4) == [1, 4, 9]

    def test_parallel_preserves_order(self):
        items = list(range(40))
        out = parallel.parallel_map(_square, items, workers=2, min_chunk=1)
        assert out == [x * x for x in items]

    def test_workers_one_is_serial(self):
        assert parallel.parallel_map(_square, list(range(10)), workers=1) == [
            x * x for x in range(10)
        ]

    def test_default_workers_positive(self):
        assert parallel.default_workers() >= 1


class TestErrors:
    def test_hierarchy(self):
        from repro.util.errors import (
            CapacityError,
            ConstructionError,
            InvalidBlockError,
            InvalidCoveringError,
            RoutingError,
            TopologyError,
        )

        for exc in (
            CapacityError,
            ConstructionError,
            InvalidBlockError,
            InvalidCoveringError,
            RoutingError,
            SolverError,
            TopologyError,
        ):
            assert issubclass(exc, ReproError)
        assert issubclass(InvalidBlockError, ValueError)
