"""Tests for :mod:`repro.util.parallel` — weight-balanced chunking and
the worker-count environment override, including the hypothesis
invariants the sharded solver and the dispatch scheduler both lean on
(partition exactness, the LPT balance bound, determinism)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.parallel import (
    MAX_WORKERS_ENV,
    default_workers,
    lpt_order,
    parallel_map,
    resolve_workers,
    weighted_chunks,
)

_weight_lists = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=40
)


def _square(x: int) -> int:
    return x * x


class TestWeightedChunks:
    def test_balances_by_weight_not_count(self):
        items = ["a", "b", "c", "d", "e"]
        weights = [10, 1, 1, 1, 10]
        bins = weighted_chunks(items, weights, 2)
        loads = sorted(
            sum(weights[items.index(it)] for it in bin_) for bin_ in bins
        )
        # Count-based halving would give loads (12, 11) at best only by
        # luck; LPT pairs the two heavy items apart: (11, 12).
        assert loads == [11, 12]

    def test_preserves_all_items_once(self):
        items = list(range(9))
        bins = weighted_chunks(items, [1] * 9, 4)
        flat = sorted(x for bin_ in bins for x in bin_)
        assert flat == items

    def test_item_order_within_bin(self):
        bins = weighted_chunks([3, 1, 2], [5, 5, 5], 1)
        assert bins == [[3, 1, 2]]

    def test_deterministic(self):
        items = list(range(12))
        weights = [(i * 7) % 5 + 1 for i in items]
        assert weighted_chunks(items, weights, 3) == weighted_chunks(items, weights, 3)

    def test_drops_empty_bins(self):
        bins = weighted_chunks([1], [1.0], 4)
        assert bins == [[1]]

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="weights"):
            weighted_chunks([1, 2], [1.0], 2)


class TestWeightedChunksInvariants:
    """Hypothesis invariants — previously only exercised indirectly
    through root-orbit sharding, now load-bearing for the dispatcher's
    schedule too."""

    @settings(max_examples=200, deadline=None)
    @given(weights=_weight_lists, bins=st.integers(1, 12))
    def test_partition_exactness(self, weights, bins):
        """Every item lands in exactly one bin, in its original relative
        order within the bin, and no bin is empty."""
        items = list(range(len(weights)))
        chunks = weighted_chunks(items, weights, bins)
        flat = [x for chunk in chunks for x in chunk]
        assert sorted(flat) == items  # each item exactly once
        for chunk in chunks:
            assert chunk == sorted(chunk)  # original order preserved
            assert chunk  # empties dropped
        assert len(chunks) <= bins

    @settings(max_examples=200, deadline=None)
    @given(weights=_weight_lists, bins=st.integers(1, 12))
    def test_lpt_balance_bound(self, weights, bins):
        """The classic LPT-greedy guarantee: no bin exceeds the ideal
        (total/bins) by more than one largest item."""
        items = list(range(len(weights)))
        chunks = weighted_chunks(items, weights, bins)
        loads = [sum(weights[i] for i in chunk) for chunk in chunks]
        ideal = sum(weights) / max(1, bins)
        slack = ideal + max(weights)
        assert max(loads) <= slack + 1e-6 * (1 + slack)

    @settings(max_examples=100, deadline=None)
    @given(weights=_weight_lists, bins=st.integers(1, 12))
    def test_deterministic(self, weights, bins):
        items = list(range(len(weights)))
        assert weighted_chunks(items, weights, bins) == weighted_chunks(
            items, weights, bins
        )

    @settings(max_examples=100, deadline=None)
    @given(weights=_weight_lists)
    def test_lpt_order_is_a_heaviest_first_permutation(self, weights):
        order = lpt_order(weights)
        assert sorted(order) == list(range(len(weights)))
        ordered = [weights[i] for i in order]
        assert ordered == sorted(ordered, reverse=True)
        # ties break toward the earlier index, so the order is canonical
        for a, b in zip(order, order[1:]):
            if weights[a] == weights[b]:
                assert a < b


class TestWorkerResolution:
    def test_default_at_least_one(self):
        assert default_workers() >= 1

    def test_env_override_caps_default(self, monkeypatch):
        monkeypatch.setenv(MAX_WORKERS_ENV, "1")
        assert default_workers() == 1

    def test_env_override_caps_explicit(self, monkeypatch):
        monkeypatch.setenv(MAX_WORKERS_ENV, "2")
        assert resolve_workers(8) == 2
        assert resolve_workers(1) == 1

    def test_env_override_unparsable_ignored(self, monkeypatch):
        monkeypatch.setenv(MAX_WORKERS_ENV, "not-a-number")
        assert resolve_workers(3) == 3

    def test_env_override_floor_one(self, monkeypatch):
        monkeypatch.setenv(MAX_WORKERS_ENV, "0")
        assert default_workers() == 1


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(_square, [1, 2, 3], workers=1) == [1, 4, 9]

    def test_weighted_path_preserves_order(self):
        items = list(range(10))
        out = parallel_map(
            _square, items, workers=2, weights=[float(i) for i in items]
        )
        assert out == [x * x for x in items]

    def test_weighted_serial_when_capped(self, monkeypatch):
        monkeypatch.setenv(MAX_WORKERS_ENV, "1")
        out = parallel_map(_square, list(range(8)), weights=[1.0] * 8)
        assert out == [x * x for x in range(8)]

    def test_weights_length_mismatch(self):
        with pytest.raises(ValueError, match="weights"):
            parallel_map(_square, [1, 2, 3, 4, 5], workers=2, weights=[1.0])
