"""The HTTP shell: endpoints, status codes, SSE, byte-identity.

Each test runs a real :class:`SolverServer` on an ephemeral port
(``port 0``) with requests through :mod:`urllib` — the same stack the
CI smoke job's curl clients exercise.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api import CoverSpec, solve
from repro.dispatch.dispatcher import cost_weight
from repro.serve import SolverServer, SolverService

N8 = CoverSpec.for_ring(8, backend="exact", use_hints=False)
N6 = CoverSpec.for_ring(6, backend="exact", use_hints=False)


@pytest.fixture(scope="module")
def n8_oracle():
    return solve(N8, cache=None)


@pytest.fixture
def server(tmp_path):
    service = SolverService(tmp_path / "ledger", cache=tmp_path / "cache")
    httpd = SolverServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    service.start()
    base = f"http://127.0.0.1:{httpd.server_address[1]}"
    yield base, service
    httpd.shutdown()
    httpd.server_close()
    service.shutdown()


def _post(base: str, payload: dict):
    req = urllib.request.Request(
        base + "/v1/solve",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req) as response:
        return response.status, response.read()


def _get_json(base: str, path: str):
    with urllib.request.urlopen(base + path) as response:
        return response.status, json.loads(response.read())


def _wait_done(base: str, job: str, timeout: float = 30.0) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, doc = _get_json(base, f"/v1/jobs/{job}")
        if doc["state"] in ("done", "failed", "degraded"):
            return doc
        time.sleep(0.02)
    raise AssertionError(f"job {job[:12]} never finished")


class TestEndpoints:
    def test_health_and_stats(self, server):
        base, _ = server
        status, doc = _get_json(base, "/v1/health")
        assert status == 200 and doc["status"] == "ok"
        status, doc = _get_json(base, "/v1/stats")
        assert status == 200
        for key in ("queue_depth", "coalesced", "solves", "jobs", "cache"):
            assert key in doc
        assert "hit_rate" in doc["cache"]

    def test_solve_then_poll_then_result_byte_identical(
        self, server, n8_oracle
    ):
        base, _ = server
        status, body = _post(base, N8.to_payload())
        assert status == 202
        doc = json.loads(body)
        assert doc["job"] == N8.spec_hash  # the handle IS the spec hash
        _wait_done(base, doc["job"])
        with urllib.request.urlopen(
            base + doc["links"]["result"]
        ) as response:
            assert response.read().decode() == n8_oracle.to_json()

    def test_second_post_served_immediately_with_exact_bytes(
        self, server, n8_oracle
    ):
        base, _ = server
        _, body = _post(base, N8.to_payload())
        _wait_done(base, json.loads(body)["job"])
        status, body = _post(base, N8.to_payload())
        assert status == 200
        assert body.decode() == n8_oracle.to_json()

    def test_result_conflict_while_pending(self, server):
        base, service = server
        service.request_drain()  # freeze the queue: the job stays pending
        status, body = _post(base, N8.to_payload())
        assert status == 202
        try:
            urllib.request.urlopen(
                base + f"/v1/jobs/{N8.spec_hash}/result"
            )
        except urllib.error.HTTPError as err:
            assert err.code == 409
        else:
            raise AssertionError("expected 409 for an unfinished job")

    def test_unknown_job_and_unknown_route_404(self, server):
        base, _ = server
        for path in (f"/v1/jobs/{'f' * 64}", "/v1/nope", "/v1/jobs/short"):
            try:
                urllib.request.urlopen(base + path)
            except urllib.error.HTTPError as err:
                assert err.code == 404
            else:
                raise AssertionError(f"expected 404 for {path}")

    def test_bad_payload_400(self, server):
        base, _ = server
        for body in (b"not json", b'{"n": -4}', b'{"unexpected": 1}'):
            req = urllib.request.Request(base + "/v1/solve", data=body)
            try:
                urllib.request.urlopen(req)
            except urllib.error.HTTPError as err:
                assert err.code == 400
                assert "error" in json.loads(err.read())
            else:
                raise AssertionError(f"expected 400 for {body!r}")

    def test_429_carries_retry_after(self, tmp_path):
        service = SolverService(
            tmp_path / "ledger",
            cache=None,
            max_inflight_weight=cost_weight(N8),
        )
        httpd = SolverServer(("127.0.0.1", 0), service)
        threading.Thread(target=httpd.serve_forever, daemon=True).start()
        base = f"http://127.0.0.1:{httpd.server_address[1]}"
        try:
            # Workers never started: the first job camps on the budget.
            status, _ = _post(base, N8.to_payload())
            assert status == 202
            try:
                _post(base, N6.to_payload())
            except urllib.error.HTTPError as err:
                assert err.code == 429
                assert int(err.headers["Retry-After"]) >= 1
            else:
                raise AssertionError("expected 429")
        finally:
            httpd.shutdown()
            httpd.server_close()
            service.shutdown()


class TestSSE:
    def test_stream_replays_state_and_ends_after_terminal(
        self, server, n8_oracle
    ):
        base, _ = server
        _, body = _post(base, N8.to_payload())
        job = json.loads(body)["job"]
        # Subscribe while (probably) still running; the stream must
        # open with a state replay and close after the terminal event.
        with urllib.request.urlopen(
            base + f"/v1/jobs/{job}/events", timeout=30
        ) as response:
            assert response.headers["Content-Type"].startswith(
                "text/event-stream"
            )
            text = response.read().decode()  # EOF == stream closed
        events = [
            json.loads(line.removeprefix("data: "))
            for line in text.splitlines()
            if line.startswith("data: ")
        ]
        assert events, f"no SSE events in {text!r}"
        assert events[0].get("replay") is True
        assert events[-1]["state"] in ("done", "pending", "running")
        _wait_done(base, job)

    def test_stream_on_finished_job_is_a_single_replay(self, server):
        base, _ = server
        _, body = _post(base, N6.to_payload())
        job = json.loads(body)["job"]
        _wait_done(base, job)
        with urllib.request.urlopen(
            base + f"/v1/jobs/{job}/events", timeout=10
        ) as response:
            text = response.read().decode()
        assert "event: state" in text
        assert '"replay": true' in text
        assert '"state": "done"' in text
