"""JobLedger: the state machine, persistence, and crash recovery."""

from __future__ import annotations

import sqlite3
import threading

import pytest

from repro.serve.ledger import (
    JOB_STATES,
    TERMINAL_STATES,
    JobLedger,
    LedgerError,
    SCHEMA_VERSION,
)

H1 = "a" * 64
H2 = "b" * 64


@pytest.fixture
def ledger(tmp_path):
    led = JobLedger(tmp_path / "jobs.sqlite3")
    yield led
    led.close()


class TestStateMachine:
    def test_happy_path_pending_running_done(self, ledger):
        row = ledger.submit(H1, '{"n": 8}')
        assert row.state == "pending" and row.attempts == 0
        row = ledger.mark_running(H1)
        assert row.state == "running" and row.attempts == 1
        assert row.started_at is not None
        row = ledger.mark_done(H1, '{"envelope": true}')
        assert row.state == "done" and row.terminal
        assert row.result_json == '{"envelope": true}'
        assert row.finished_at is not None

    def test_degraded_is_a_distinct_terminal_state(self, ledger):
        ledger.submit(H1, "{}")
        ledger.mark_running(H1)
        row = ledger.mark_done(H1, "{}", degraded=True)
        assert row.state == "degraded" and row.terminal

    def test_failure_and_resubmit(self, ledger):
        ledger.submit(H1, "{}")
        ledger.mark_running(H1)
        row = ledger.mark_failed(H1, "boom")
        assert row.state == "failed" and row.error == "boom"
        row = ledger.requeue(H1)  # explicit resubmit clears the error
        assert row.state == "pending" and row.error is None
        ledger.mark_running(H1)
        assert ledger.get(H1).attempts == 2

    def test_preemption_requeues_a_running_job(self, ledger):
        ledger.submit(H1, "{}")
        ledger.mark_running(H1)
        row = ledger.requeue(H1)
        assert row.state == "pending"

    def test_illegal_transitions_raise(self, ledger):
        ledger.submit(H1, "{}")
        with pytest.raises(LedgerError, match="illegal transition"):
            ledger.mark_done(H1, "{}")  # pending -> done skips running
        ledger.mark_running(H1)
        ledger.mark_done(H1, "{}")
        with pytest.raises(LedgerError, match="illegal transition"):
            ledger.mark_running(H1)  # done is terminal
        with pytest.raises(LedgerError, match="illegal transition"):
            ledger.requeue(H1)  # done cannot be resubmitted
        with pytest.raises(LedgerError, match="unknown job"):
            ledger.mark_running(H2)

    def test_duplicate_submit_is_a_noop(self, ledger):
        first = ledger.submit(H1, '{"n": 8}')
        ledger.mark_running(H1)
        again = ledger.submit(H1, '{"n": 999}')
        assert again.state == "running"  # existing row wins
        assert again.spec_json == '{"n": 8}'
        assert again.created_at == first.created_at

    def test_counts_cover_every_state(self, ledger):
        assert ledger.counts() == {state: 0 for state in JOB_STATES}
        ledger.submit(H1, "{}")
        ledger.submit(H2, "{}")
        ledger.mark_running(H2)
        counts = ledger.counts()
        assert counts["pending"] == 1 and counts["running"] == 1


class TestPersistence:
    def test_rows_survive_reopen(self, tmp_path):
        led = JobLedger(tmp_path / "jobs.sqlite3")
        led.submit(H1, '{"n": 8}')
        led.mark_running(H1)
        led.mark_done(H1, '{"the": "envelope"}')
        led.close()
        led2 = JobLedger(tmp_path / "jobs.sqlite3")
        row = led2.get(H1)
        assert row.state == "done"
        assert row.result_json == '{"the": "envelope"}'
        led2.close()

    def test_recover_flips_running_rows_to_pending(self, tmp_path):
        led = JobLedger(tmp_path / "jobs.sqlite3")
        led.submit(H1, "{}")
        led.mark_running(H1)  # ... and then the server dies
        led.submit(H2, "{}")
        led.close()
        led2 = JobLedger(tmp_path / "jobs.sqlite3")
        assert led2.recover() == 1
        assert led2.get(H1).state == "pending"
        unfinished = [row.spec_hash for row in led2.unfinished()]
        assert unfinished == [H1, H2]  # oldest first
        led2.close()

    def test_wal_mode_and_schema_version(self, tmp_path):
        path = tmp_path / "jobs.sqlite3"
        led = JobLedger(path)
        led.close()
        conn = sqlite3.connect(path)
        assert conn.execute("PRAGMA journal_mode").fetchone()[0] == "wal"
        assert (
            conn.execute("PRAGMA user_version").fetchone()[0] == SCHEMA_VERSION
        )
        conn.close()

    def test_future_schema_version_is_refused(self, tmp_path):
        path = tmp_path / "jobs.sqlite3"
        JobLedger(path).close()
        conn = sqlite3.connect(path)
        conn.execute("PRAGMA user_version=99")
        conn.commit()
        conn.close()
        with pytest.raises(LedgerError, match="schema version 99"):
            JobLedger(path)


class TestConcurrency:
    def test_parallel_submitters_never_lose_a_row(self, tmp_path):
        led = JobLedger(tmp_path / "jobs.sqlite3")
        hashes = [f"{i:064d}" for i in range(20)]

        def hammer(h: str) -> None:
            for _ in range(5):
                led.submit(h, "{}")

        threads = [
            threading.Thread(target=hammer, args=(h,)) for h in hashes
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert led.counts()["pending"] == len(hashes)
        led.close()


def test_terminal_states_are_a_subset_of_job_states():
    assert set(TERMINAL_STATES) < set(JOB_STATES)
