"""SolverService: coalescing, admission, preempt/resume, counters.

The coalescing tests come in two strengths: a *deterministic* one that
submits before the workers start (so every identical submission must
coalesce — no timing), and a *racing* one with real threads against a
live service (at most one engine solve, stragglers served from the
cache).  The restart test is the tentpole's acceptance story: a service
drained mid-proof leaves a pending ledger row + checkpoint, and a new
service on the same directories finishes the proof from where it
stopped, byte-identically.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.api import CoverSpec, solve
from repro.api.cache import ResultCache
from repro.serve import SolverService
from repro.serve.admission import AdmissionController
from repro.dispatch.dispatcher import cost_weight

N8 = CoverSpec.for_ring(8, backend="exact", use_hints=False)
N6 = CoverSpec.for_ring(6, backend="exact", use_hints=False)


@pytest.fixture(scope="module")
def n8_oracle():
    return solve(N8, cache=None)


def _wait_terminal(service, spec_hash, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        row = service.job(spec_hash)
        if row is not None and row.terminal:
            return row
        time.sleep(0.02)
    raise AssertionError(f"job {spec_hash[:12]} never reached a terminal state")


class TestCoalescing:
    def test_identical_submissions_coalesce_deterministically(
        self, tmp_path, n8_oracle
    ):
        service = SolverService(tmp_path / "ledger", cache=tmp_path / "cache")
        dispositions = [service.submit(N8.to_payload()) for _ in range(3)]
        assert [d[0] for d in dispositions] == ["job", "job", "job"]
        # All three share the job handle == the canonical spec hash.
        assert {d[1]["job"] for d in dispositions} == {N8.spec_hash}
        service.start()
        row = _wait_terminal(service, N8.spec_hash)
        assert row.state == "done"
        assert row.result_json == n8_oracle.to_json()
        stats = service.stats()
        assert stats["solves"] == 1  # exactly one engine solve
        assert stats["coalesced"] == 2
        assert stats["cache"]["coalesced"] == 2  # satellite: cache-owned counter
        service.shutdown()

    def test_concurrent_submitters_observe_one_engine_solve(
        self, tmp_path, n8_oracle
    ):
        service = SolverService(
            tmp_path / "ledger", cache=tmp_path / "cache", workers=2
        )
        service.start()
        outcomes: list[tuple[str, object]] = []
        lock = threading.Lock()

        def client() -> None:
            disposition = service.submit(N8.to_payload())
            if disposition[0] == "job":
                _wait_terminal(service, N8.spec_hash)
                disposition = service.submit(N8.to_payload())
            with lock:
                outcomes.append(disposition)

        threads = [threading.Thread(target=client) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert len(outcomes) == 6
        # Every client eventually got the same byte-identical envelope...
        assert all(kind == "result" for kind, _ in outcomes)
        assert {text for _, text in outcomes} == {n8_oracle.to_json()}
        # ...from exactly one engine run (SolverStats via the envelope:
        # the recorded node count matches a single uninterrupted solve).
        assert service.stats()["solves"] == 1
        assert service.job(N8.spec_hash).attempts == 1
        service.shutdown()

    def test_cache_hit_skips_the_queue_entirely(self, tmp_path, n8_oracle):
        cache = ResultCache(tmp_path / "cache")
        cache.put(n8_oracle)
        service = SolverService(tmp_path / "ledger", cache=cache)
        kind, text = service.submit(N8.to_payload())
        assert kind == "result"
        assert text == n8_oracle.to_json()
        assert service.stats()["jobs"]["pending"] == 0  # no job was created
        service.shutdown()


class TestRestartResume:
    def test_drained_mid_proof_then_resumed_by_a_new_service(
        self, tmp_path, n8_oracle
    ):
        """The killed-mid-job story, made deterministic: the poll_hook
        seam preempts the proof at >= 800 nodes (checkpoint flushed by
        the backend), the service self-drains, and a second service on
        the same ledger+checkpoint directories finishes the remaining
        nodes — one resume, byte-identical envelope, no re-solve."""
        service = SolverService(
            tmp_path / "ledger",
            cache=tmp_path / "cache",
            checkpoint_every=256,
            poll_hook=lambda spec_hash, stats: stats.nodes >= 800,
        )
        service.submit(N8.to_payload())
        service.start()
        assert service.stopped.wait(timeout=30), "service did not self-drain"
        service.shutdown()
        assert service.preempted
        ckpt = service.checkpoints.load(N8.spec_hash)
        assert ckpt is not None and 0 < ckpt.nodes < n8_oracle.stats.nodes

        resumed = SolverService(tmp_path / "ledger", cache=tmp_path / "cache")
        assert resumed.start() == 1  # the pending row was recovered
        row = _wait_terminal(resumed, N8.spec_hash)
        assert row.state == "done"
        assert row.result_json == n8_oracle.to_json()
        assert resumed.stats()["resumed"] == 1  # continued the checkpoint
        assert resumed.checkpoints.load(N8.spec_hash) is None  # cleaned up
        resumed.shutdown()

    def test_preempt_after_budget_self_drains(self, tmp_path, n8_oracle):
        service = SolverService(
            tmp_path / "ledger",
            cache=tmp_path / "cache",
            checkpoint_every=256,
            preempt_after=("nodes", 800),
        )
        service.submit(N8.to_payload())
        service.start()
        assert service.stopped.wait(timeout=30)
        service.shutdown()
        assert service.preempted
        ckpt = service.checkpoints.load(N8.spec_hash)
        assert ckpt is not None and ckpt.nodes >= 800


class TestFailuresAndAdmission:
    def test_unsolvable_spec_lands_in_failed_and_can_be_resubmitted(
        self, tmp_path
    ):
        # n=13 exceeds every exact ceiling: deterministic routing failure.
        bad = CoverSpec.for_ring(13, backend="exact")
        service = SolverService(tmp_path / "ledger", cache=None)
        kind, doc = service.submit(bad.to_payload())
        assert kind == "job"
        service.start()
        row = _wait_terminal(service, bad.spec_hash)
        assert row.state == "failed" and row.error
        # Resubmitting a failed job re-queues it (attempts grow).
        kind, doc = service.submit(bad.to_payload())
        assert kind == "job"
        row = _wait_terminal(service, bad.spec_hash)
        assert row.state == "failed" and row.attempts == 2
        service.shutdown()

    def test_admission_rejects_over_budget_with_retry_after(self, tmp_path):
        admission = AdmissionController(max_inflight_weight=cost_weight(N8))
        admitted, _ = admission.try_admit(N8)
        assert admitted
        refused, retry_after = admission.try_admit(N6)
        assert not refused and retry_after > 0
        assert admission.snapshot()["rejected"] == 1
        admission.release(N8)
        admitted, _ = admission.try_admit(N6)
        assert admitted

    def test_idle_service_admits_jobs_heavier_than_the_budget(self, tmp_path):
        # A single job over the whole budget must run, not deadlock.
        admission = AdmissionController(max_inflight_weight=1.0)
        admitted, _ = admission.try_admit(N8)
        assert admitted

    def test_busy_service_returns_retry_after_through_submit(self, tmp_path):
        service = SolverService(
            tmp_path / "ledger",
            cache=None,
            max_inflight_weight=cost_weight(N8),
        )
        # Workers not started: the first submission stays in flight.
        assert service.submit(N8.to_payload())[0] == "job"
        kind, retry_after = service.submit(N6.to_payload())
        assert kind == "busy"
        assert retry_after > 0
        service.shutdown()
