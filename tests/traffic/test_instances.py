"""Tests for traffic instances."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.traffic.instances import (
    Instance,
    all_to_all,
    from_requests,
    lambda_all_to_all,
    ring_instance,
)
from repro.util import circular


class TestAllToAll:
    def test_counts(self):
        inst = all_to_all(7)
        assert inst.total_requests == 21
        assert inst.is_all_to_all()
        assert inst.required((2, 5)) == 1
        assert inst.required((5, 2)) == 1

    def test_degree(self):
        inst = all_to_all(6)
        assert all(inst.degree(v) == 5 for v in range(6))

    def test_total_distance_matches_kernel(self):
        for n in (4, 7, 10):
            assert all_to_all(n).total_distance == circular.total_chord_distance(n)

    @given(st.integers(3, 25))
    def test_all_to_all_edge_count(self, n):
        assert len(list(all_to_all(n).requests())) == n * (n - 1) // 2


class TestLambda:
    def test_multiplicities(self):
        inst = lambda_all_to_all(5, 3)
        assert inst.max_multiplicity == 3
        assert inst.total_requests == 30
        assert inst.is_all_to_all()

    def test_scaled(self):
        inst = all_to_all(5).scaled(2)
        assert inst.required((0, 1)) == 2
        assert inst.total_distance == 2 * all_to_all(5).total_distance

    def test_bad_lambda(self):
        with pytest.raises(ValueError):
            lambda_all_to_all(5, 0)


class TestCustom:
    def test_from_requests_accumulates(self):
        inst = from_requests(6, [(0, 3), (3, 0), (1, 2)])
        assert inst.required((0, 3)) == 2
        assert inst.required((1, 2)) == 1
        assert inst.total_requests == 3

    def test_ring_instance(self):
        inst = ring_instance(5)
        assert inst.total_requests == 5
        assert inst.required((4, 0)) == 1
        assert not inst.is_all_to_all()

    def test_validation(self):
        with pytest.raises(ValueError):
            Instance(4, {(0, 9): 1})
        with pytest.raises(ValueError):
            Instance(4, {(0, 1): 0})
        with pytest.raises(ValueError):
            Instance(4, {(2, 2): 1})

    def test_normalisation_merges_orientations(self):
        inst = Instance(5, {(0, 3): 1, (3, 0): 2})
        assert inst.required((0, 3)) == 3

    def test_as_graph(self):
        g = from_requests(4, [(0, 1), (0, 1), (2, 3)]).as_graph()
        assert g.number_of_edges() == 3
        assert g.number_of_nodes() == 4

    def test_empty_instance(self):
        inst = Instance(4, {})
        assert inst.total_requests == 0
        assert inst.max_multiplicity == 0
        assert inst.total_distance == 0
