"""Setuptools entry point.

A plain ``setup.py`` (with no ``[build-system]`` table in
``pyproject.toml``) keeps ``pip install -e .`` working in fully offline
environments: PEP 517 editable installs require the ``wheel`` package,
which may not be available without network access, while the legacy
``setup.py develop`` path needs only setuptools.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'A Note on Cycle Covering' (SPAA 2001): "
        "DRC cycle coverings for survivable WDM ring networks"
    ),
    long_description=open("README.md").read() if __import__("os").path.exists("README.md") else "",
    long_description_content_type="text/markdown",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
    extras_require={
        "dev": ["pytest>=7.0", "pytest-benchmark>=4.0", "hypothesis>=6.0"],
        # Optional accelerators.  Both are probed at runtime and both
        # have dependency-free fallbacks, so neither is a hard install
        # requirement: the vectorized search kernel degrades to the
        # pure-Python reference (REPRO_KERNEL), and the SAT backend's
        # pysat engine degrades to the bundled CDCL (REPRO_SAT).
        "sat": ["python-sat>=0.1.7"],
        "all": ["python-sat>=0.1.7"],
    },
    license="MIT",
)
