#!/usr/bin/env python
"""Quickstart: build, verify, and inspect an optimal DRC-covering.

The paper's core object in ~30 lines: cover the All-to-All traffic of
an 11-node optical ring by cycles, each independently routable with
edge-disjoint paths (the Disjoint Routing Constraint), using the
provably minimum number of cycles ρ(11) = 15.

Run:  python examples/quickstart.py [n]
"""

from __future__ import annotations

import sys

from repro import (
    lower_bound,
    optimal_covering,
    rho,
    route_block,
    verify_covering,
)


def main(n: int = 11) -> None:
    print(f"=== DRC cycle covering of K_{n} over the ring C_{n} ===\n")

    # Theorem 1/2 construction: ρ(n) cycles, the paper's optimum.
    covering = optimal_covering(n)
    print(covering.describe())
    print(f"ρ({n}) formula = {rho(n)}")

    # The lower-bound certificate proves no smaller covering exists.
    cert = lower_bound(n)
    print("\nOptimality certificate:")
    print(cert.explain())

    # Independent verification: exhibits an edge-disjoint routing for
    # every block and recounts coverage from scratch.
    report = verify_covering(covering, expect_optimal=True)
    print(f"\nVerifier: {report.summary()}")

    # Look inside one subnetwork: its requests and their ring routes.
    block = covering.blocks[0]
    routing = route_block(n, block)
    print(f"\nFirst subnetwork {block.vertices}:")
    for request in routing.requests:
        arc = routing.arc_for(request)
        print(f"  request {request} -> clockwise arc {arc.start}->{arc.end} "
              f"({arc.length} hops)")
    print(f"  links used: {sorted(routing.used_links)} (tiles the ring: "
          f"{routing.uses_all_links()})")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 11)
