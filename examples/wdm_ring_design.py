#!/usr/bin/env python
"""Design a survivable WDM metro ring, end to end.

The scenario from the paper's introduction: an operator runs an optical
ring (here: 13 switches) and must provision the All-to-All wavelength
demands so that any single failure is handled by fast automatic
protection, while keeping equipment cost down.  The paper's answer:
cover the demands by ρ(n) independent protected cycles.

This example designs the network, prints the wavelength plan, itemises
the cost, and contrasts the Theorem covering against two alternatives
(the polynomial fallback and the greedy heuristic).

Run:  python examples/wdm_ring_design.py [n]
"""

from __future__ import annotations

import sys

from repro.baselines.greedy import greedy_drc_covering
from repro.core.bounds import total_size_lower_bound
from repro.core.construction import fast_covering
from repro.traffic.instances import all_to_all
from repro.util.tables import Table
from repro.wdm.adm import evaluate_cost
from repro.wdm.design import design_ring_network


def main(n: int = 13) -> None:
    print(f"=== Survivable WDM design for a {n}-node optical ring ===\n")

    design = design_ring_network(n)
    print(design.summary())

    # The wavelength plan: one (working, protection) pair per subnetwork.
    plan = design.plan
    print(f"\nWavelength plan: {plan.num_subnetworks} subnetworks, "
          f"{plan.num_wavelengths} wavelengths "
          f"(fiber utilisation of working λs: {plan.fiber_utilisation:.0%})")
    for k, blk in enumerate(design.covering.blocks[:5]):
        print(f"  subnetwork {k}: nodes {blk.vertices}, "
              f"λ_work={plan.working_wavelength(k)}, "
              f"λ_spare={plan.protection_wavelength(k)}")
    if design.covering.num_blocks > 5:
        print(f"  ... and {design.covering.num_blocks - 5} more")

    # A few request routes.
    print("\nSample working routes:")
    for req in [(0, 1), (0, n // 2), (2, n - 2)]:
        k, arc = design.route_of(*req)
        print(f"  {req}: subnetwork {k}, clockwise {arc.start}->{arc.end} "
              f"({arc.length} hops)")

    # Cost comparison against alternatives (the paper's cost claim).
    table = Table(
        "Cost comparison (same price book, same survivability)",
        ["method", "cycles", "ADMs", "ADM optimum", "wavelengths", "total cost"],
    )
    for name, cov in [
        ("theorem (ρ-optimal)", design.covering),
        ("polynomial fallback", fast_covering(n)),
        ("greedy heuristic", greedy_drc_covering(n)),
    ]:
        cost = evaluate_cost(cov)
        table.add_row(
            name, cov.num_blocks, cov.total_slots,
            total_size_lower_bound(all_to_all(n)).value,
            2 * cov.num_blocks, round(cost.total, 1),
        )
    print("\n" + table.render())
    print("\nNote: the ρ-optimal covering also attains the ADM optimum — on a "
          "ring, minimising cycles and minimising ADMs (refs [3],[4]) agree.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 13)
