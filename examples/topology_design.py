#!/usr/bin/env python
"""Design beyond the ring: a metro built from two interlocked rings.

The paper's future-work section names trees of rings as the next
topology.  This example runs the full design flow on one: DRC
feasibility via the exact gate-projection lemma, a greedy covering,
wavelength assignment by conflict-graph coloring (meshes can share
wavelengths — rings cannot), and a comparison against a plain ring of
the same order.

Run:  python examples/topology_design.py
"""

from __future__ import annotations

from repro.core.blocks import CycleBlock
from repro.core.formulas import rho
from repro.extensions.topologies import (
    greedy_graph_covering,
    ring_network_graph,
    tree_of_rings,
)
from repro.extensions.tree_of_rings_drc import (
    drc_on_tree_of_rings,
    gate_projection,
    rings_of,
)
from repro.util.tables import Table
from repro.wdm.coloring import color_wavelengths


def main() -> None:
    net = tree_of_rings((6, 5))
    print(f"=== Designing on {net.name}: {net.num_nodes} nodes, "
          f"{net.num_links} fibers ===\n")

    rings = rings_of(net)
    print(f"Constituent rings: {[sorted(r) for r in rings]}\n")

    # --- DRC feasibility via the gate-projection lemma -----------------
    print("DRC feasibility (gate-projection lemma):")
    samples = [CycleBlock((0, 2, 4)), CycleBlock((0, 7, 3, 9)), CycleBlock((1, 6, 4, 8))]
    for blk in samples:
        ok = drc_on_tree_of_rings(net, blk)
        projections = [
            f"ring{tuple(sorted(r))}→{gate_projection(net, tuple(r), blk)}"
            for r in rings
        ]
        print(f"  cycle {blk.vertices}: routable={ok}")
        for proj in projections:
            print(f"      {proj}")
    print()

    # --- covering + wavelength coloring ----------------------------------
    blocks = greedy_graph_covering(net)
    plan = color_wavelengths(net, blocks)
    print(f"Greedy DRC-covering: {len(blocks)} subnetworks")
    print(f"Wavelength coloring: {plan.summary()}\n")

    # --- comparison with a plain ring of the same order -------------------
    n = net.num_nodes
    ring = ring_network_graph(n)
    ring_blocks = greedy_graph_covering(ring)
    ring_plan = color_wavelengths(ring, ring_blocks)

    table = Table(
        "Tree of rings vs plain ring (same number of nodes)",
        ["topology", "fibers", "cycles (greedy)", "wavelengths", "ρ(ring) opt"],
    )
    table.add_row(net.name, net.num_links, len(blocks), plan.num_wavelengths, "open")
    table.add_row(ring.name, ring.num_links, len(ring_blocks),
                  ring_plan.num_wavelengths, rho(n))
    print(table.render())
    print("\nThe tree of rings pays more cycles (cut nodes throttle the "
          "convexity budget) but its wavelengths can be shared; the exact "
          "optimum for trees of rings is open — the paper's 'we are now "
          "investigating'.")


if __name__ == "__main__":
    main()
