#!/usr/bin/env python
"""Certify the theorems: formulas vs constructions vs exhaustive search.

The note states Theorems 1 and 2 without proof.  This example shows the
reproduction's three-way certification for small n:

1. the closed forms ρ(n);
2. the constructions (ladder / pole-deletion / clean insertion), which
   give matching *upper* bounds;
3. the lower-bound certificates (counting, diameter, parity), which
   give matching *lower* bounds — plus, for n ≤ 8, a branch-and-bound
   solver that knows none of the above and exhausts the search space.

Everything runs through the declarative API: one ``CoverSpec`` per
job, the ``exact`` backend pinned for the certification runs (with
warm-start hints *off*, so the search proves optimality unaided).

Run:  python examples/solver_certificates.py
"""

from __future__ import annotations

from repro.api import CoverSpec, solve
from repro.core.bounds import lower_bound
from repro.core.construction import optimal_covering
from repro.core.formulas import rho
from repro.util.tables import Table


def main() -> None:
    print("=== Certifying ρ(n): formula = construction = lower bound ===\n")

    table = Table(
        "Three/four-way agreement",
        ["n", "ρ formula", "construction", "lower bound", "B&B solver", "nodes"],
    )
    for n in range(3, 13):
        built = optimal_covering(n).num_blocks
        lb = lower_bound(n).value
        if n <= 8:
            result = solve(CoverSpec.for_ring(n, backend="exact", use_hints=False))
            solver_val, nodes = str(result.num_blocks), result.stats.nodes
        else:
            solver_val, nodes = "—", "—"
        table.add_row(n, rho(n), built, lb, solver_val, nodes)
    print(table.render())

    print("\nWhy the lower bounds hold (n = 12 shown):")
    print(lower_bound(12).explain())

    print("\nWhy n ≡ 0 (mod 4) needs the +1 (n = 8):")
    cert = lower_bound(8)
    for arg in cert.arguments:
        print(f"  [{arg.name}] ≥ {arg.value}: {arg.reason}")


if __name__ == "__main__":
    main()
