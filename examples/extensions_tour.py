#!/usr/bin/env python
"""Tour of the paper's future-work extensions.

"As an extension of this problem, we are now investigating cases with
other communication instances such as λK_n ... We also consider other
network topologies, for example, trees of rings, grids or tori."

Part 1 — λK_n: lower bounds vs constructions; odd n certified optimal.
Part 2 — other topologies: DRC feasibility and greedy coverings on a
tree of rings, a grid, and a torus, compared with the ring.

Run:  python examples/extensions_tour.py
"""

from __future__ import annotations

from repro.core.blocks import CycleBlock
from repro.core.formulas import rho
from repro.extensions.lambda_fold import lambda_covering, lambda_lower_bound
from repro.extensions.topologies import (
    greedy_graph_covering,
    grid_network,
    is_drc_routable_on_graph,
    ring_network_graph,
    torus_network,
    tree_of_rings,
)
from repro.traffic.instances import lambda_all_to_all
from repro.util.tables import Table


def lambda_part() -> None:
    print("=== Part 1: covering λK_n ===\n")
    table = Table(
        "λK_n: proven lower bound vs best construction",
        ["n", "λ", "lower bound", "constructed", "gap", "status"],
    )
    for n in (7, 9, 8, 10):
        for lam in (2, 3):
            lb = lambda_lower_bound(n, lam).value
            cov = lambda_covering(n, lam)
            assert cov.covers(lambda_all_to_all(n, lam))
            gap = cov.num_blocks - lb
            status = "optimal (certified)" if gap == 0 else "open gap"
            table.add_row(n, lam, lb, cov.num_blocks, gap, status)
    print(table.render())
    print("\nOdd n: λ repetitions of the Theorem 1 decomposition meet the "
          "counting bound exactly.  Even n: a small gap remains — the same "
          "open territory the paper's extensions section announces.\n")


def topology_part() -> None:
    print("=== Part 2: beyond the ring ===\n")

    # DRC feasibility flips with topology: the paper's bad K4 cycle
    # (1,3,4,2) is unroutable on the ring C4 but fine on a denser graph.
    bad = CycleBlock((0, 2, 3, 1))
    ring4 = ring_network_graph(4)
    torus = torus_network(3, 3)
    print(f"cycle (1,3,4,2) on C4:      routable = "
          f"{is_drc_routable_on_graph(ring4, bad)}   (paper's negative case)")
    print(f"cycle (1,3,4,2) on 3x3 torus: routable = "
          f"{is_drc_routable_on_graph(torus, bad)}   (extra links give room)\n")

    table = Table(
        "Greedy DRC-covering of All-to-All across topologies",
        ["topology", "nodes", "links", "greedy cycles", "ring ρ(n) reference"],
    )
    for net in (
        ring_network_graph(8),
        tree_of_rings((5, 5)),
        grid_network(3, 3),
        torus_network(3, 3),
    ):
        blocks = greedy_graph_covering(net)
        table.add_row(net.name, net.num_nodes, net.num_links, len(blocks),
                      rho(net.num_nodes))
    print(table.render())
    print("\nDenser topologies admit smaller coverings per node; the exact "
          "optima for trees of rings / grids / tori remain open — as the "
          "paper says, 'we are now investigating'.")


if __name__ == "__main__":
    lambda_part()
    topology_part()
