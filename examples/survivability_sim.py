#!/usr/bin/env python
"""Failure drill: cut every fiber, watch the protection switch.

The paper's survivability story, made operational: each covering cycle
is an independently protected subnetwork — half its capacity carries
working traffic, half is spare.  When a fiber is cut, the (single)
affected request of each subnetwork loops back the other way around the
ring on the protection wavelength.  No coordination between
subnetworks, no spare-capacity contention.

The example also shows the limits: a *node* failure kills the traffic
terminating there (nothing can save it) while transit traffic survives
when its loop-back avoids the dead switch.

Run:  python examples/survivability_sim.py [n]
"""

from __future__ import annotations

import sys

from repro.survivability.failures import LinkFailure, NodeFailure
from repro.survivability.metrics import evaluate_survivability
from repro.survivability.protection import ProtectionSimulator
from repro.util.tables import Table
from repro.wdm.design import design_ring_network


def main(n: int = 12) -> None:
    print(f"=== Failure drill on a {n}-node protected WDM ring ===\n")
    design = design_ring_network(n)
    print(design.summary(), "\n")
    sim = ProtectionSimulator(design)

    # --- one fiber cut in detail -------------------------------------
    cut = LinkFailure(n, 0)
    outcome = sim.simulate_link_failure(cut)
    a, b = cut.endpoints
    print(f"Fiber cut on link {a}-{b}: "
          f"{outcome.affected_requests} requests switch to protection "
          f"(one per subnetwork), recovered={outcome.fully_recovered}")
    for ev in outcome.reroutes[:4]:
        print(f"  subnetwork {ev.subnetwork}: request {ev.request} "
              f"rerouted {ev.working_arc.length} -> {ev.protection_arc.length} hops "
              f"(stretch {ev.stretch:.2f}x)")
    if len(outcome.reroutes) > 4:
        print(f"  ... and {len(outcome.reroutes) - 4} more")

    # --- full sweep -----------------------------------------------------
    report = evaluate_survivability(design)
    print(f"\nFull sweep: {report.summary()}")

    # --- node failures (the harder case) ----------------------------------
    table = Table(
        "Node failures: terminated vs transit traffic",
        ["failed node", "terminated", "transit recovered", "transit lost", "survival"],
    )
    for v in range(min(n, 5)):
        out = sim.simulate_node_failure(NodeFailure(n, v))
        table.add_row(
            v, out.terminated_requests, out.recovered_requests,
            out.unrecovered_requests, f"{out.transit_survival_rate:.0%}",
        )
    print("\n" + table.render())
    print("\n(Terminated traffic is unrecoverable by any scheme: its "
          "endpoint is gone.  Transit traffic survives when the loop-back "
          "path avoids the dead switch.)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 12)
